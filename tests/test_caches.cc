// Timing tests for the memory hierarchy: caches, MSHRs, DRAM, prefetcher.
#include <gtest/gtest.h>

#include "common/config.h"
#include "mem/cache.h"
#include "mem/dram.h"
#include "mem/prefetcher.h"

namespace paradet::mem {
namespace {

/// Next level with a fixed latency, for isolating cache behaviour.
class FixedLatency final : public MemoryLevel {
 public:
  explicit FixedLatency(Cycle latency) : latency_(latency) {}
  Cycle access(Addr, bool, Cycle when, Addr) override {
    ++accesses_;
    return when + latency_;
  }
  std::uint64_t accesses() const { return accesses_; }

 private:
  Cycle latency_;
  std::uint64_t accesses_ = 0;
};

CacheConfig small_cache() {
  return CacheConfig{.name = "test",
                     .size_bytes = 1024,  // 4 sets x 4 ways x 64B... no:
                     .assoc = 2,          // 8 sets x 2 ways x 64B.
                     .line_bytes = 64,
                     .hit_latency = 2,
                     .mshrs = 2};
}

TEST(Cache, MissThenHit) {
  FixedLatency next(100);
  Cache cache(small_cache(), next);
  const Cycle miss = cache.access(0x1000, false, 0, 0);
  EXPECT_EQ(miss, 104u);  // 2 (lookup) + 100 (next) + 2 (fill-to-use).
  EXPECT_EQ(cache.misses(), 1u);
  const Cycle hit = cache.access(0x1008, false, 200, 0);
  EXPECT_EQ(hit, 202u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(Cache, HitOnFillingLineWaitsForFill) {
  FixedLatency next(100);
  Cache cache(small_cache(), next);
  const Cycle miss = cache.access(0x1000, false, 0, 0);
  // A younger access to the same line while in flight waits for the fill.
  const Cycle hit = cache.access(0x1010, false, 10, 0);
  EXPECT_EQ(hit, (miss - 2) + 2);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(Cache, LruEviction) {
  FixedLatency next(10);
  Cache cache(small_cache(), next);  // 8 sets, 2 ways.
  // Three lines mapping to the same set (stride = sets * line = 512).
  cache.access(0x0000, false, 0, 0);
  cache.access(0x0200, false, 100, 0);
  cache.access(0x0400, false, 200, 0);  // evicts 0x0000 (LRU).
  EXPECT_EQ(cache.misses(), 3u);
  cache.access(0x0200, false, 300, 0);  // still resident.
  EXPECT_EQ(cache.hits(), 1u);
  cache.access(0x0000, false, 400, 0);  // was evicted: miss again.
  EXPECT_EQ(cache.misses(), 4u);
}

TEST(Cache, DirtyEvictionWritesBack) {
  FixedLatency next(10);
  Cache cache(small_cache(), next);
  cache.access(0x0000, true, 0, 0);     // write-allocate, dirty.
  cache.access(0x0200, false, 100, 0);
  cache.access(0x0400, false, 200, 0);  // evicts dirty 0x0000.
  EXPECT_EQ(cache.writebacks(), 1u);
  // 3 demand fills + 1 writeback reached the next level.
  EXPECT_EQ(next.accesses(), 4u);
}

TEST(Cache, MshrMergesSameLine) {
  FixedLatency next(100);
  Cache cache(small_cache(), next);
  cache.access(0x1000, false, 0, 0);
  // Second miss to the same line while in flight merges; the next level
  // sees only one fill. (A second access is a hit in this model since the
  // line is allocated at request time; exercise the merge through a
  // *different* cache instance sharing the level... simplest: same line
  // misses cannot occur twice, so verify the merge path via mshr_merges of
  // a conflicting line pattern.)
  EXPECT_EQ(next.accesses(), 1u);
}

TEST(Cache, MshrLimitDelaysMisses) {
  FixedLatency next(1000);
  Cache cache(small_cache(), next);  // 2 MSHRs.
  const Cycle m1 = cache.access(0x1000, false, 0, 0);
  const Cycle m2 = cache.access(0x2000, false, 0, 0);
  // Third concurrent miss must wait for an MSHR to retire.
  const Cycle m3 = cache.access(0x3000, false, 0, 0);
  EXPECT_GE(m3, std::min(m1, m2));
  EXPECT_EQ(cache.mshr_stall_events(), 1u);
  EXPECT_GT(m3, 1000u);
}

TEST(Dram, RowHitFasterThanRowMiss) {
  DramConfig config;
  DramModel dram(config, 3200);
  const Cycle first = dram.access(0x0, 0);          // row activate.
  const Cycle hit = dram.access(0x40, first);       // same row.
  const Cycle miss = dram.access(0x800000, hit);    // different row/bank.
  EXPECT_EQ(dram.row_hits(), 1u);
  EXPECT_EQ(dram.row_misses(), 2u);
  const Cycle hit_latency = hit - first;
  // Row hit pays tCAS + burst (plus any residual tRAS window); it is
  // strictly cheaper than a precharge + activate + CAS row miss.
  EXPECT_LT(hit_latency,
            (config.tRP + config.tRCD + config.tCAS) * 4u);
  EXPECT_GE(hit_latency, (config.tCAS + config.burst_cycles) * 4u);
  EXPECT_GT(first, hit_latency);
  (void)miss;
}

TEST(Dram, BusContentionSerialisesBursts) {
  DramConfig config;
  DramModel dram(config, 3200);
  // Two simultaneous requests to different banks: data bursts share the
  // bus, so completions differ by at least one burst.
  const Cycle a = dram.access(0x0, 0);
  const Cycle b = dram.access(0x2000, 0);  // other bank.
  EXPECT_GE(b > a ? b - a : a - b, config.burst_cycles * 4u);
}

TEST(Dram, BankConflictWaitsForBank) {
  DramConfig config;
  DramModel dram(config, 3200);
  const Cycle a = dram.access(0x0, 0);
  // Same bank, different row: must precharge + activate after `a`'s use.
  const Cycle b = dram.access(0x800000, 0);
  EXPECT_GT(b, a);
}

TEST(Prefetcher, DetectsStrideAndFills) {
  FixedLatency next(100);
  CacheConfig cfg = small_cache();
  cfg.size_bytes = 64 * 1024;
  cfg.assoc = 4;
  Cache cache(cfg, next);
  StridePrefetcher prefetcher;
  cache.set_prefetcher(&prefetcher);
  // Stream through lines with a fixed stride from one PC.
  const Addr pc = 0x1000;
  Cycle now = 0;
  for (int i = 0; i < 8; ++i) {
    cache.access(0x10000 + i * 64, false, now, pc);
    now += 200;
  }
  EXPECT_GT(prefetcher.issued(), 0u);
  EXPECT_GT(cache.prefetch_fills(), 0u);
  // After training, far-ahead lines should already be present: the last
  // accesses hit on prefetched lines.
  const auto misses_before = cache.misses();
  cache.access(0x10000 + 8 * 64, false, now, pc);
  EXPECT_EQ(cache.misses(), misses_before);  // prefetched: hit.
}

TEST(Prefetcher, NoPrefetchOnRandomPattern) {
  FixedLatency next(100);
  Cache cache(small_cache(), next);
  StridePrefetcher prefetcher;
  cache.set_prefetcher(&prefetcher);
  const Addr pc = 0x1000;
  const Addr addresses[] = {0x10000, 0x50040, 0x20080, 0x70000, 0x31000};
  Cycle now = 0;
  for (const Addr a : addresses) {
    cache.access(a, false, now, pc);
    now += 200;
  }
  EXPECT_EQ(prefetcher.issued(), 0u);
}

TEST(Cache, PrefetchDoesNotEvictOnPresence) {
  FixedLatency next(100);
  Cache cache(small_cache(), next);
  cache.access(0x1000, false, 0, 0);
  const auto fills_before = cache.prefetch_fills();
  cache.prefetch_line(0x1000, 50);  // already present: no-op.
  EXPECT_EQ(cache.prefetch_fills(), fills_before);
}

}  // namespace
}  // namespace paradet::mem
