// Figure 9: normalised slowdown when varying the checker-core clock
// frequency (125MHz..2GHz, 12 cores). Paper: memory-bound benchmarks
// (randacc, stream) barely slow down even at 125MHz; compute-bound ones
// (swaptions, bitcount) reach ~4-4.5x below 500MHz because the aggregate
// checker throughput cannot keep up and the main core stalls on log-full.
//
// Runs as one runtime::SweepCampaign over (frequency x workload) cells,
// so the figure shards across processes (--shard=K/N --out=...) and
// checkpoints/restarts like any other campaign; each workload's unchecked
// baseline (the normalisation denominator, independent of the checker
// frequency) is recomputed locally by every shard that owns one of its
// cells, and each kernel is assembled exactly once.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "runtime/sweep_campaign.h"

namespace {

int run(int argc, char** argv) {
  using namespace paradet;
  const auto options = bench::Options::parse(argc, argv, /*campaign=*/true);
  const CheckerExec checker = options.checker_exec();
  bench::print_header(
      "Figure 9: slowdown vs checker-core frequency (12 cores)",
      "125MHz: up to ~4.5x for compute-bound, ~1x for memory-bound; "
      "1GHz+: all ~1x");

  const std::uint64_t freqs_mhz[] = {125, 250, 500, 1000, 2000};

  runtime::SweepCampaign sweep(std::size(freqs_mhz),
                               bench::suite_or_fail(options),
                               /*seed=*/0xF160009);
  SystemConfig baseline = SystemConfig::standard();
  baseline.detection.enabled = false;
  baseline.detection.simulate_checkers = false;
  sweep.enable_baselines(baseline, bench::kInstructionBudget);

  const auto result = sweep.run(
      options.runner(), options.campaign_options(),
      [&](std::size_t point, std::size_t, const runtime::AssemblyCache::Image& image,
          std::uint64_t) {
        SystemConfig config = SystemConfig::standard();
        config.checker.freq_mhz = freqs_mhz[point];
        return sim::run_program(config, image, bench::kInstructionBudget,
                                nullptr, checker);
      });

  runtime::TableSpec spec;
  for (const auto freq : freqs_mhz) {
    spec.columns.push_back(std::to_string(freq) + "MHz");
  }
  runtime::print_transposed(result, spec, [&](std::size_t p, std::size_t b) {
    return result.slowdown(p, b);
  });
  bench::print_shard_note(result.artifact);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return paradet::bench::cli_main(run, argc, argv);
}
