// The partitioned load-store log (§IV-D). An SRAM structure that records,
// in commit order, every load (address + forwarded value), store (address +
// value) and non-deterministic result from the main core. The log is split
// into fixed-size segments with a one-to-one mapping to checker cores;
// different segments are checked simultaneously, which is the source of the
// scheme's parallelism.
//
// Segment lifecycle:
//   kFree -> (open_next) -> kFilling -> (seal_filling) -> kSealed
//         -> (begin_check) -> kChecking -> (release) -> kFree
//
// Segments are filled strictly round-robin. If the next segment is not free
// when the current one seals, the main core must stall (§IV-D: "either one
// of the checker cores or the main core must always be stalled").
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/config.h"
#include "common/types.h"
#include "core/checkpoint.h"

namespace paradet::core {

enum class EntryKind : std::uint8_t {
  kLoad,    ///< forwarded load: checker verifies address, consumes value.
  kStore,   ///< checker verifies address *and* value (§IV-B).
  kNondet,  ///< forwarded non-deterministic result (e.g. RDCYCLE).
};

struct LogEntry {
  EntryKind kind = EntryKind::kLoad;
  std::uint8_t size = 8;  ///< access size in bytes (0 for kNondet).
  Addr addr = 0;          ///< memory address (0 for kNondet).
  std::uint64_t value = 0;
  Cycle commit_cycle = 0;  ///< when the main core committed the micro-op.
  UopSeq seq = 0;          ///< dynamic micro-op index on the main core.

  bool operator==(const LogEntry&) const = default;
};

/// Why a segment stopped filling.
enum class SealReason : std::uint8_t {
  kFull,       ///< segment capacity reached (incl. §IV-D macro-op rule).
  kTimeout,    ///< instruction timeout reached (§IV-J).
  kInterrupt,  ///< interrupt/context-switch boundary (§IV-G).
  kDrain,      ///< program end / system fault: final partial segment (§IV-H).
};

enum class SegmentState : std::uint8_t {
  kFree,
  kFilling,
  kSealed,
  kChecking,
};

/// One partition of the log plus the metadata a checker core needs: the
/// start/end register checkpoints and the committed instruction count (used
/// by the checker-side timeout, §IV-J).
struct Segment {
  SegmentState state = SegmentState::kFree;
  std::vector<LogEntry> entries;
  RegisterCheckpoint start;
  RegisterCheckpoint end;
  /// Macro-ops committed while this segment was filling.
  std::uint64_t instruction_count = 0;
  SealReason seal_reason = SealReason::kFull;
  Cycle opened_at = 0;
  Cycle sealed_at = 0;
  /// Monotonic ordinal: the k-th segment the main core filled. Used for
  /// strong-induction ordering of detection results (§IV).
  std::uint64_t ordinal = 0;
  /// Expected trap at the end of the segment (kDrain seals only): the
  /// checker must observe the same trap when re-executing.
  std::uint8_t end_trap = 0;
};

class LoadStoreLog {
 public:
  explicit LoadStoreLog(const LogConfig& config)
      : config_(config), segments_(config.segments) {
    assert(config.segments >= 1);
    for (auto& segment : segments_) {
      segment.entries.reserve(
          static_cast<std::size_t>(config.entries_per_segment()));
    }
  }

  unsigned num_segments() const {
    return static_cast<unsigned>(segments_.size());
  }
  std::uint64_t entries_per_segment() const {
    return config_.entries_per_segment();
  }
  const LogConfig& config() const { return config_; }

  // --- Filling (main-core commit side) ---------------------------------

  bool has_filling() const { return filling_ >= 0; }
  /// Index of the segment that would be opened next (round-robin).
  unsigned next_index() const { return next_; }
  bool next_is_free() const {
    return segments_[next_].state == SegmentState::kFree;
  }

  /// Opens the next segment for filling. Requires next_is_free() and no
  /// segment currently filling.
  Segment& open_next(const RegisterCheckpoint& start, Cycle now) {
    assert(!has_filling() && next_is_free());
    Segment& segment = segments_[next_];
    filling_ = static_cast<int>(next_);
    next_ = (next_ + 1) % num_segments();
    segment.state = SegmentState::kFilling;
    segment.entries.clear();
    segment.instruction_count = 0;
    segment.start = start;
    segment.opened_at = now;
    segment.ordinal = ordinals_issued_++;
    segment.end_trap = 0;
    return segment;
  }

  Segment& filling() {
    assert(has_filling());
    return segments_[static_cast<unsigned>(filling_)];
  }
  unsigned filling_index() const {
    assert(has_filling());
    return static_cast<unsigned>(filling_);
  }

  std::uint64_t free_entries_in_filling() const {
    assert(has_filling());
    return entries_per_segment() -
           segments_[static_cast<unsigned>(filling_)].entries.size();
  }

  /// §IV-D boundary rule: a macro-op with `mem_uops` memory micro-ops may
  /// only commit into the filling segment if all of them fit; otherwise the
  /// segment seals early so that checkpoints land on macro-op boundaries.
  bool fits_in_filling(unsigned mem_uops) const {
    return free_entries_in_filling() >= mem_uops;
  }

  void append(const LogEntry& entry) {
    Segment& segment = filling();
    assert(segment.entries.size() <
           static_cast<std::size_t>(entries_per_segment()));
    segment.entries.push_back(entry);
    ++entries_appended_;
  }

  void note_instruction() { ++filling().instruction_count; }

  /// True when the instruction timeout (§IV-J) has been reached by the
  /// filling segment. A zero timeout means "infinite".
  bool timeout_reached() const {
    return config_.instruction_timeout != 0 && has_filling() &&
           segments_[static_cast<unsigned>(filling_)].instruction_count >=
               config_.instruction_timeout;
  }

  /// Seals the filling segment; it becomes checkable (kSealed).
  Segment& seal_filling(SealReason reason, const RegisterCheckpoint& end,
                        Cycle now) {
    Segment& segment = filling();
    segment.state = SegmentState::kSealed;
    segment.seal_reason = reason;
    segment.end = end;
    segment.sealed_at = now;
    filling_ = -1;
    ++seals_[static_cast<unsigned>(reason)];
    return segment;
  }

  // --- Checking (checker-core side) -------------------------------------

  Segment& segment(unsigned index) { return segments_.at(index); }
  const Segment& segment(unsigned index) const { return segments_.at(index); }

  void begin_check(unsigned index) {
    assert(segments_.at(index).state == SegmentState::kSealed);
    segments_[index].state = SegmentState::kChecking;
  }

  void release(unsigned index) {
    assert(segments_.at(index).state == SegmentState::kChecking ||
           segments_.at(index).state == SegmentState::kSealed);
    segments_[index].state = SegmentState::kFree;
  }

  // --- Statistics --------------------------------------------------------

  std::uint64_t entries_appended() const { return entries_appended_; }
  std::uint64_t segments_opened() const { return ordinals_issued_; }
  std::uint64_t seals(SealReason reason) const {
    return seals_[static_cast<unsigned>(reason)];
  }

 private:
  LogConfig config_;
  std::vector<Segment> segments_;
  int filling_ = -1;   ///< index of the filling segment, -1 if none.
  unsigned next_ = 0;  ///< round-robin cursor.
  std::uint64_t ordinals_issued_ = 0;
  std::uint64_t entries_appended_ = 0;
  std::uint64_t seals_[4] = {0, 0, 0, 0};
};

}  // namespace paradet::core
