// The distributed-campaign equivalence suite: a 64-run fault campaign
// split into 1, 3 and 8 shards — each shard executed at --jobs 1 and 8 —
// merges back (through the same library path tools/merge_results.cpp
// drives) into an artifact byte-identical to the unsharded run's; a
// checkpoint taken mid-campaign, with all in-memory state dropped,
// resumes to byte-identical final output without re-running finished
// tasks; and aggregate-only mode drops the per-run payloads without
// changing the aggregate. Also covers the --shard/--out/--checkpoint CLI
// parsing these flows hang off.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "runtime/campaign.h"
#include "runtime/parallel_runner.h"
#include "runtime/serialize.h"
#include "sim/checked_system.h"
#include "workloads/workloads.h"

namespace paradet::runtime {
namespace {

constexpr std::size_t kTasks = 64;
constexpr std::uint64_t kSeed = 0x5EEDFULL;

/// Shared, immutable campaign fixture: the kernel image and its clean run
/// (fault placement needs the clean uop count).
struct Fixture {
  SystemConfig config = SystemConfig::standard();
  isa::Assembled assembled;
  sim::RunResult clean;
};

const Fixture& fixture() {
  static const Fixture* f = [] {
    auto* fx = new Fixture;
    const auto workload =
        workloads::make_freqmine(workloads::Scale{.factor = 0.02});
    fx->assembled = workloads::assemble_or_die(workload);
    fx->clean = sim::run_program(fx->config, fx->assembled, 200'000);
    return fx;
  }();
  return *f;
}

/// The campaign task: one random transient strike, derived purely from the
/// task seed — the exact task any shard of the same campaign would run.
sim::RunResult fault_task(std::size_t, std::uint64_t task_seed) {
  const Fixture& fx = fixture();
  SplitMix64 rng(task_seed);
  const core::FaultSite site_pool[] = {
      core::FaultSite::kMainArchReg,
      core::FaultSite::kMainStoreValue,
      core::FaultSite::kMainLoadValuePostLfu,
  };
  core::FaultInjector faults;
  core::FaultSpec spec;
  spec.site = site_pool[rng.next_below(std::size(site_pool))];
  spec.at_seq =
      100 + rng.next_below(fx.clean.uops > 200 ? fx.clean.uops - 200 : 1);
  spec.reg = 5 + static_cast<unsigned>(rng.next_below(25));
  spec.bit = static_cast<unsigned>(rng.next_below(64));
  faults.add(spec);
  return sim::run_program(fx.config, fx.assembled, 200'000, &faults);
}

/// The unsharded single-process artifact, serialized once: the byte-level
/// ground truth every sharded/checkpointed variant must reproduce.
const std::string& reference_json() {
  static const std::string* text = [] {
    const Campaign campaign(kTasks, kSeed);
    CampaignRunOptions options;
    options.keep_runs = true;
    const CampaignArtifact artifact =
        campaign.run_sharded(ParallelRunner(1), options, fault_task);
    return new std::string(to_json(artifact));
  }();
  return *text;
}

TEST(ShardMerge, MergedShardsAreByteIdenticalToUnshardedRun) {
  const Campaign campaign(kTasks, kSeed);
  for (const std::uint64_t shard_count : {1u, 3u, 8u}) {
    for (const unsigned jobs : {1u, 8u}) {
      const ParallelRunner runner(jobs);
      std::vector<CampaignArtifact> shards;
      for (std::uint64_t k = 0; k < shard_count; ++k) {
        CampaignRunOptions options;
        options.shard = ShardSpec{k, shard_count};
        options.keep_runs = true;
        shards.push_back(campaign.run_sharded(runner, options, fault_task));
        EXPECT_EQ(shards.back().runs.size(),
                  (kTasks - k + shard_count - 1) / shard_count);
      }
      const CampaignArtifact merged = merge_artifacts(std::move(shards));
      EXPECT_EQ(to_json(merged), reference_json())
          << "shards=" << shard_count << " jobs=" << jobs;
    }
  }
}

TEST(ShardMerge, ShardArtifactFilesSurviveTheDiskTrip) {
  // The cross-process story writes shards to disk; prove the file layer
  // preserves merge equivalence, not just in-memory artifacts.
  const Campaign campaign(kTasks, kSeed);
  const ParallelRunner runner(8);
  std::vector<CampaignArtifact> shards;
  for (std::uint64_t k = 0; k < 3; ++k) {
    CampaignRunOptions options;
    options.shard = ShardSpec{k, 3};
    options.out_path = testing::TempDir() + "/paradet_shard_" +
                       std::to_string(k) + ".json";
    campaign.run_sharded(runner, options, fault_task);  // aggregate-only.
    shards.push_back(read_artifact_file(options.out_path));
    std::remove(options.out_path.c_str());
  }
  EXPECT_EQ(to_json(merge_artifacts(std::move(shards))), reference_json());
}

TEST(ShardMerge, CheckpointResumeIsByteIdenticalToUninterrupted) {
  const std::string path = testing::TempDir() + "/paradet_checkpoint.json";
  std::remove(path.c_str());
  std::remove(journal_path_for(path).c_str());

  const Campaign campaign(kTasks, kSeed);
  const ParallelRunner serial(1);
  CampaignRunOptions options;
  options.keep_runs = true;
  options.checkpoint_path = path;
  options.checkpoint_every = 4;

  // Phase 1: the campaign dies after 20 completed tasks.
  constexpr unsigned kCrashAfter = 20;
  std::atomic<unsigned> launched{0};
  EXPECT_THROW(
      campaign.run_sharded(serial, options,
                           [&](std::size_t i, std::uint64_t seed) {
                             if (launched.fetch_add(1) >= kCrashAfter) {
                               throw std::runtime_error("injected crash");
                             }
                             return fault_task(i, seed);
                           }),
      std::runtime_error);

  // The checkpoint on disk holds the whole partial campaign: every
  // completion was journaled immediately (some already compacted into the
  // snapshot, the rest appended at <path>.journal), so the resume state
  // covers all 20 with the partial aggregate re-absorbed.
  CampaignArtifact checkpoint;
  ASSERT_TRUE(load_checkpoint_state(
      path, JournalHeader{kSeed, kTasks, 0, ShardSpec{}}, &checkpoint));
  EXPECT_EQ(checkpoint.runs.size(), kCrashAfter);
  EXPECT_EQ(checkpoint.aggregate.runs, kCrashAfter);
  EXPECT_EQ(checkpoint.seed, kSeed);

  // Phase 2: all in-memory state is gone (fresh run_sharded call); the
  // resumed campaign must only run the remaining tasks...
  std::atomic<unsigned> resumed{0};
  const CampaignArtifact artifact = campaign.run_sharded(
      serial, options, [&](std::size_t i, std::uint64_t seed) {
        ++resumed;
        return fault_task(i, seed);
      });
  EXPECT_EQ(resumed.load(), kTasks - kCrashAfter);

  // ...and still produce the uninterrupted campaign's bytes.
  EXPECT_EQ(to_json(artifact), reference_json());

  // A third run resumes from the completed checkpoint: nothing re-runs.
  std::atomic<unsigned> rerun{0};
  const CampaignArtifact again = campaign.run_sharded(
      serial, options, [&](std::size_t i, std::uint64_t seed) {
        ++rerun;
        return fault_task(i, seed);
      });
  EXPECT_EQ(rerun.load(), 0u);
  EXPECT_EQ(to_json(again), reference_json());
  std::remove(path.c_str());
}

TEST(ShardMerge, FingerprintMismatchRejectsCheckpointAndMerge) {
  // Same seed and task count, different driver configuration (e.g. another
  // --scale): the fingerprint is the only thing telling them apart.
  const std::string path =
      testing::TempDir() + "/paradet_fingerprint_ckpt.json";
  std::remove(path.c_str());
  const auto trivial = [](std::size_t, std::uint64_t) {
    return sim::RunResult{};
  };
  const Campaign campaign(8, kSeed);
  CampaignRunOptions options;
  options.fingerprint = 0xAAA;
  options.checkpoint_path = path;
  campaign.run_sharded(ParallelRunner(2), options, trivial);

  options.fingerprint = 0xBBB;
  EXPECT_THROW(campaign.run_sharded(ParallelRunner(2), options, trivial),
               std::runtime_error);
  std::remove(path.c_str());

  CampaignRunOptions left, right;
  left.shard = ShardSpec{0, 2};
  left.keep_runs = true;
  left.fingerprint = 0xAAA;
  right.shard = ShardSpec{1, 2};
  right.keep_runs = true;
  right.fingerprint = 0xBBB;
  EXPECT_THROW(
      merge_artifacts({campaign.run_sharded(ParallelRunner(2), left, trivial),
                       campaign.run_sharded(ParallelRunner(2), right,
                                            trivial)}),
      std::runtime_error);
}

TEST(ShardMerge, ForeignCheckpointIsRejected) {
  const std::string path = testing::TempDir() + "/paradet_foreign_ckpt.json";
  std::remove(path.c_str());

  // Leave a valid checkpoint for a *different* campaign (other seed).
  const Campaign other(kTasks, kSeed + 1);
  CampaignRunOptions options;
  options.checkpoint_path = path;
  other.run_sharded(ParallelRunner(8), options,
                    [](std::size_t, std::uint64_t) { return sim::RunResult{}; });

  const Campaign campaign(kTasks, kSeed);
  EXPECT_THROW(campaign.run_sharded(ParallelRunner(1), options, fault_task),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(ShardMerge, AggregateOnlyModeDropsRunsButMatchesAggregate) {
  const Campaign campaign(kTasks, kSeed);
  CampaignRunOptions options;  // keep_runs defaults off.
  const CampaignArtifact artifact =
      campaign.run_sharded(ParallelRunner(8), options, fault_task);
  EXPECT_TRUE(artifact.runs.empty());

  const CampaignArtifact reference = artifact_from_json(reference_json());
  EXPECT_EQ(to_json(artifact.aggregate), to_json(reference.aggregate));
}

TEST(ShardMerge, MergeRejectsInconsistentShards) {
  const Campaign campaign(8, kSeed);
  const ParallelRunner runner(4);
  const auto run_shard = [&](std::uint64_t k, std::uint64_t n) {
    CampaignRunOptions options;
    options.shard = ShardSpec{k, n};
    options.keep_runs = true;
    return campaign.run_sharded(runner, options, [](std::size_t,
                                                    std::uint64_t) {
      return sim::RunResult{};
    });
  };

  // Overlap: the same shard twice.
  EXPECT_THROW(merge_artifacts({run_shard(0, 2), run_shard(0, 2)}),
               std::runtime_error);
  // Gap: one of two shards missing.
  EXPECT_THROW(merge_artifacts({run_shard(0, 2)}), std::runtime_error);
  // Nothing at all.
  EXPECT_THROW(merge_artifacts({}), std::runtime_error);
  // Mixed campaigns (different seed ⇒ different campaign).
  const Campaign other(8, kSeed + 1);
  CampaignRunOptions options;
  options.shard = ShardSpec{1, 2};
  options.keep_runs = true;
  auto foreign = other.run_sharded(
      runner, options,
      [](std::size_t, std::uint64_t) { return sim::RunResult{}; });
  EXPECT_THROW(merge_artifacts({run_shard(0, 2), std::move(foreign)}),
               std::runtime_error);
  // The happy path of the same helper does merge.
  EXPECT_EQ(merge_artifacts({run_shard(0, 2), run_shard(1, 2)}).runs.size(),
            8u);
}

TEST(ShardMerge, InvalidShardSpecIsRejectedAtRunTime) {
  const Campaign campaign(8, kSeed);
  CampaignRunOptions options;
  options.shard = ShardSpec{3, 3};  // index out of range.
  EXPECT_THROW(campaign.run_sharded(ParallelRunner(1), options,
                                    [](std::size_t, std::uint64_t) {
                                      return sim::RunResult{};
                                    }),
               std::invalid_argument);
}

// --- CLI flag parsing ------------------------------------------------------

RuntimeOptions parse_args(std::vector<std::string> args,
                          bool campaign_flags = true) {
  args.insert(args.begin(), "test-binary");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& arg : args) argv.push_back(arg.data());
  return RuntimeOptions::from_args(static_cast<int>(argv.size()),
                                   argv.data(), campaign_flags);
}

TEST(RuntimeOptionsFlags, ParsesShardOutAndCheckpoint) {
  const RuntimeOptions options =
      parse_args({"--jobs=4", "--shard=2/5", "--out=s2.json",
                  "--checkpoint=ckpt.json", "--checkpoint-every=7",
                  "positional", "--unrelated=x"});
  EXPECT_EQ(options.jobs, 4u);
  EXPECT_EQ(options.shard_index, 2u);
  EXPECT_EQ(options.shard_count, 5u);
  EXPECT_EQ(options.out_path, "s2.json");
  EXPECT_EQ(options.checkpoint_path, "ckpt.json");
  EXPECT_EQ(options.checkpoint_every, 7u);
}

TEST(RuntimeOptionsFlags, JournalIsAnAliasForCheckpoint) {
  EXPECT_EQ(parse_args({"--journal=ckpt.json"}).checkpoint_path, "ckpt.json");
  // --checkpoint-every pairs with either spelling.
  EXPECT_EQ(parse_args({"--journal=ckpt.json", "--checkpoint-every=9"})
                .checkpoint_every,
            9u);
}

TEST(RuntimeOptionsFlags, DefaultsToTheWholeCampaign) {
  const RuntimeOptions options = parse_args({});
  EXPECT_EQ(options.shard_index, 0u);
  EXPECT_EQ(options.shard_count, 1u);
  EXPECT_TRUE(options.out_path.empty());
  EXPECT_TRUE(options.checkpoint_path.empty());
  const ShardSpec shard{options.shard_index, options.shard_count};
  EXPECT_TRUE(shard.whole());
}

TEST(RuntimeOptionsFlagsDeathTest, MalformedShardSpecsExit) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_EXIT(parse_args({"--shard=3/3"}), testing::ExitedWithCode(2),
              "invalid argument");
  EXPECT_EXIT(parse_args({"--shard=1"}), testing::ExitedWithCode(2),
              "invalid argument");
  EXPECT_EXIT(parse_args({"--shard=a/b"}), testing::ExitedWithCode(2),
              "invalid argument");
  EXPECT_EXIT(parse_args({"--shard=1/0"}), testing::ExitedWithCode(2),
              "invalid argument");
  EXPECT_EXIT(parse_args({"--checkpoint-every=0"}),
              testing::ExitedWithCode(2), "invalid argument");
  // Negative values must not wrap through strtoull into huge shards.
  EXPECT_EXIT(parse_args({"--shard=0/-1"}), testing::ExitedWithCode(2),
              "invalid argument");
  EXPECT_EXIT(parse_args({"--checkpoint-every=-1"}),
              testing::ExitedWithCode(2), "invalid argument");
  // Only the '=' forms exist; the space form must fail loudly rather than
  // leak "0/2" into a driver's positional arguments.
  EXPECT_EXIT(parse_args({"--shard", "0/2"}), testing::ExitedWithCode(2),
              "invalid argument");
  EXPECT_EXIT(parse_args({"--out"}), testing::ExitedWithCode(2),
              "invalid argument");
  // A trailing --jobs with its value forgotten must not silently mean
  // "all cores".
  EXPECT_EXIT(parse_args({"--jobs"}), testing::ExitedWithCode(2),
              "invalid argument");
  EXPECT_EXIT(parse_args({"--jobs=-1"}), testing::ExitedWithCode(2),
              "invalid argument");
  // Two spellings of the same checkpoint path must not silently race.
  EXPECT_EXIT(parse_args({"--checkpoint=a.json", "--journal=b.json"}),
              testing::ExitedWithCode(2), "only one of");
  EXPECT_EXIT(parse_args({"--journal"}), testing::ExitedWithCode(2),
              "invalid argument");
  // A checkpoint interval without a checkpoint file checkpoints nothing;
  // that must be a loud usage error, not a silently ignored flag.
  EXPECT_EXIT(parse_args({"--checkpoint-every=4"}), testing::ExitedWithCode(2),
              "--checkpoint=PATH alongside");
  EXPECT_EXIT(parse_args({"--checkpoint-every=4", "--jobs=2"}),
              testing::ExitedWithCode(2), "--checkpoint=PATH alongside");
  // With the checkpoint path present — in either order — it parses.
  EXPECT_EQ(parse_args({"--checkpoint-every=4", "--checkpoint=ck.json"})
                .checkpoint_every,
            4u);
}

TEST(RuntimeOptionsFlagsDeathTest, NonCampaignDriversRejectCampaignFlags) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  // A driver that never calls run_sharded must refuse the flags rather
  // than silently run the whole campaign and write no artifact.
  EXPECT_EXIT(parse_args({"--shard=0/2"}, /*campaign_flags=*/false),
              testing::ExitedWithCode(2), "not supported by this driver");
  EXPECT_EXIT(parse_args({"--out=x.json"}, /*campaign_flags=*/false),
              testing::ExitedWithCode(2), "not supported by this driver");
  EXPECT_EXIT(parse_args({"--checkpoint=ck.json"}, /*campaign_flags=*/false),
              testing::ExitedWithCode(2), "not supported by this driver");
  EXPECT_EXIT(parse_args({"--journal=ck.json"}, /*campaign_flags=*/false),
              testing::ExitedWithCode(2), "not supported by this driver");
  // --jobs stays available everywhere.
  EXPECT_EQ(parse_args({"--jobs=3"}, /*campaign_flags=*/false).jobs, 3u);
}

}  // namespace
}  // namespace paradet::runtime
