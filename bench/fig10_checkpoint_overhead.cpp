// Figure 10: slowdown from the checkpointing system alone (checker cores
// modelled as infinitely fast), across log sizes and instruction
// timeouts. Paper: the default 36KiB/5000 keeps overhead <= 2%; a 10x
// smaller log/timeout costs up to 15%; a 10x larger one (or an infinite
// timeout) is negligible.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace paradet;
  const auto options = bench::Options::parse(argc, argv);
  bench::print_header(
      "Figure 10: checkpoint-only slowdown vs log size / timeout",
      "3.6KiB/500: up to ~1.15; 36KiB/5000: <= ~1.02; 360KiB/50000 and "
      "360KiB/inf: ~1.00");

  struct Point {
    const char* label;
    std::uint64_t log_bytes;
    std::uint64_t timeout;
  };
  const Point points[] = {
      {"3.6KiB/500", 36 * 1024 / 10, 500},
      {"36KiB/5000", 36 * 1024, 5000},
      {"360KiB/50000", 360 * 1024, 50000},
      {"360KiB/inf", 360 * 1024, 0},
  };

  std::printf("%-14s", "benchmark");
  for (const auto& point : points) std::printf(" %13s", point.label);
  std::printf("\n");

  std::vector<std::vector<bench::SuiteRun>> sweeps;
  for (const auto& point : points) {
    SystemConfig config = SystemConfig::standard();
    config.detection.simulate_checkers = false;  // checkpointing cost only.
    config.log.total_bytes = point.log_bytes;
    config.log.instruction_timeout = point.timeout;
    sweeps.push_back(bench::run_suite(options, config));
  }
  if (sweeps.empty() || sweeps[0].empty()) return 0;
  for (std::size_t b = 0; b < sweeps[0].size(); ++b) {
    std::printf("%-14s", sweeps[0][b].name.c_str());
    for (const auto& sweep : sweeps) std::printf(" %13.4f", sweep[b].slowdown());
    std::printf("\n");
  }
  std::printf("%-14s", "mean");
  for (const auto& sweep : sweeps) {
    std::printf(" %13.4f", bench::mean_slowdown(sweep));
  }
  std::printf("\n");
  return 0;
}
