// Campaign-as-a-service: a long-lived scheduler multiplexing many
// sharded campaigns over one ShardLauncher, plus the socket server that
// exposes it.
//
// Layering:
//
//   CampaignScheduler — socket-free core, unit-testable with
//     MockShardLauncher. Holds one CampaignRun per active campaign,
//     tick()s them round-robin, and turns every CampaignEvent into a
//     sequenced wire-envelope line that is (a) appended to the
//     campaign's on-disk event journal (<run_dir>/events.journal) and
//     (b) handed to the line sink for live streaming. The line on disk
//     and the line on the wire are the same bytes — the PR 4 journal
//     format promoted to the wire — so "resume from the last
//     acknowledged record" is just replaying the journal tail.
//
//   CampaignServer — the poll()-loop daemon: accepts clients on a Unix
//     or TCP socket, speaks wire_protocol.h frames, dispatches `submit`
//     and `watch` requests into the scheduler, and fans new journal
//     lines out to every watching connection. Single-threaded: campaign
//     ticks and socket traffic interleave on one loop, so there is no
//     locking anywhere.
//
// Client protocol (normative spec in docs/formats.md):
//   -> {type:"submit", body: campaign spec}     one campaign per message
//   <- {type:"submitted", body:{campaign}}      or {type:"error", ...}
//   -> {type:"watch", body:{campaign, resume_from}}
//   <- {type:"event", seq:N, body:{campaign, kind, data}}  (stream; the
//      `merged` / `failed` kinds are terminal for that campaign)
// A reconnecting watcher passes the last seq it durably consumed as
// `resume_from` and receives seq resume_from+1.. verbatim.
#pragma once

#include <csignal>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/orchestrator.h"

namespace paradet::runtime {

class ShardLauncher;
class CampaignRun;

/// One sweep request: the driver command plus the orchestration options
/// the server should run it under. `name` is the campaign's identity for
/// watch/resume; empty lets the server assign one.
struct CampaignSpec {
  std::string name;
  std::vector<std::string> driver;
  OrchestratorOptions options;

  bool operator==(const CampaignSpec&) const;
};

/// The canonical-JSON body of a `submit` message for `spec` (fixed key
/// order; docs/formats.md). parse_campaign_spec inverts it; unknown keys
/// are rejected so a typo'd option cannot silently fall back to a
/// default.
std::string campaign_spec_body(const CampaignSpec& spec);
CampaignSpec parse_campaign_spec(std::string_view body_text);

/// Socket-free scheduler core. Not thread-safe; everything happens on
/// the caller's (the server loop's) thread.
class CampaignScheduler {
 public:
  /// Invoked once per new journal line, after it is durably appended to
  /// the campaign's events.journal: (campaign name, seq, envelope line).
  using LineSink =
      std::function<void(const std::string&, std::uint64_t, const std::string&)>;

  explicit CampaignScheduler(ShardLauncher& launcher);
  ~CampaignScheduler();

  void set_line_sink(LineSink sink) { sink_ = std::move(sink); }

  struct SubmitResult {
    std::string campaign;  ///< assigned name (empty on error).
    std::string error;     ///< empty on success.
  };

  /// Starts every shard of the campaign immediately (the work queue is
  /// the set of unfinished shards, persisted per shard as checkpoint
  /// journals; retry budgets and straggler policy come from the spec's
  /// options). Duplicate active names and run-dir collisions are errors.
  SubmitResult submit(CampaignSpec spec);

  /// One non-blocking pass over every active campaign.
  void tick();

  bool busy() const;  ///< any campaign still running.
  bool known(const std::string& campaign) const;
  bool finished(const std::string& campaign) const;

  /// Journal lines of `campaign` with seq > from_seq, in order. Empty
  /// for unknown campaigns.
  std::vector<std::string> replay(const std::string& campaign,
                                  std::uint64_t from_seq) const;

  /// Kill every running shard of every campaign (server shutdown).
  void abort_all();

 private:
  struct Entry;
  void append_line(Entry& entry, const std::string& kind,
                   const std::string& data_body);

  ShardLauncher& launcher_;
  LineSink sink_;
  std::map<std::string, std::unique_ptr<Entry>> campaigns_;
  std::uint64_t next_auto_name_ = 1;
};

// --- The daemon --------------------------------------------------------------

struct CampaignServerOptions {
  /// "unix:/path/to.sock" (or a bare path), or "tcp:HOST:PORT" /
  /// "tcp:PORT" (loopback when HOST is omitted).
  std::string endpoint;
  /// Scheduler tick + poll() timeout cadence.
  unsigned poll_ms = 20;
};

/// Runs the daemon until *stop becomes nonzero (wire it to
/// SIGINT/SIGTERM) — then aborts active campaigns and returns. Throws on
/// endpoint setup failure. Returns the number of campaigns served.
std::uint64_t run_campaign_server(const CampaignServerOptions& options,
                                  ShardLauncher& launcher,
                                  const volatile std::sig_atomic_t* stop);

}  // namespace paradet::runtime
