// Tests for the out-of-order main-core timing model: pipeline-order
// invariants, structural limits and branch-redirect behaviour.
#include <gtest/gtest.h>

#include <vector>

#include "common/config.h"
#include "mem/cache.h"
#include "mem/dram.h"
#include "sim/ooo_core.h"

namespace paradet::sim {
namespace {

class OoOCoreTest : public ::testing::Test {
 protected:
  OoOCoreTest()
      : config_(SystemConfig::standard()),
        dram_(config_.dram, config_.main_core.freq_mhz),
        dram_level_(dram_),
        l2_(config_.l2, dram_level_),
        l1i_(config_.l1i, l2_),
        l1d_(config_.l1d, l2_),
        core_(config_, l1i_, l1d_) {}

  /// Schedules a uop and commits it at the earliest legal cycle. Default
  /// pcs stay within one 64-byte i-cache line so the front end is warm and
  /// the tests isolate back-end behaviour.
  UopTiming step(UopDesc desc) {
    desc.pc = desc.pc == 0 ? 0x1000 + (seq_ % 16) * 4 : desc.pc;
    desc.seq = seq_++;
    const UopTiming timing = core_.schedule(desc);
    Cycle commit = std::max(timing.complete + 1, last_commit_);
    if (commit == last_commit_ && commits_in_cycle_ >= 3) ++commit;
    if (commit > last_commit_) {
      last_commit_ = commit;
      commits_in_cycle_ = 1;
    } else {
      ++commits_in_cycle_;
    }
    core_.retire(commit);
    timings_.push_back(timing);
    return timing;
  }

  UopDesc alu(int dest, std::initializer_list<unsigned> srcs) {
    UopDesc desc;
    desc.cls = isa::ExecClass::kIntAlu;
    desc.regs.dest = dest;
    for (const unsigned s : srcs) desc.regs.srcs[desc.regs.n_srcs++] = s;
    return desc;
  }

  UopDesc load(int dest, Addr addr) {
    UopDesc desc;
    desc.cls = isa::ExecClass::kLoad;
    desc.is_load = true;
    desc.mem_addr = addr;
    desc.mem_size = 8;
    desc.regs.dest = dest;
    return desc;
  }

  UopDesc store(Addr addr, std::initializer_list<unsigned> srcs = {}) {
    UopDesc desc;
    desc.cls = isa::ExecClass::kStore;
    desc.is_store = true;
    desc.mem_addr = addr;
    desc.mem_size = 8;
    for (const unsigned s : srcs) desc.regs.srcs[desc.regs.n_srcs++] = s;
    return desc;
  }

  SystemConfig config_;
  mem::DramModel dram_;
  mem::DramLevel dram_level_;
  mem::Cache l2_;
  mem::Cache l1i_;
  mem::Cache l1d_;
  OoOCore core_;
  UopSeq seq_ = 0;
  Cycle last_commit_ = 0;
  unsigned commits_in_cycle_ = 0;
  std::vector<UopTiming> timings_;
};

TEST_F(OoOCoreTest, StageOrderingInvariant) {
  for (int i = 0; i < 200; ++i) {
    const UopTiming t = step(alu(5, {5}));
    EXPECT_LE(t.fetch, t.dispatch);
    EXPECT_LT(t.dispatch, t.issue);
    EXPECT_LT(t.issue, t.complete + 1);
  }
}

TEST_F(OoOCoreTest, DependentChainSerialises) {
  // A chain of dependent 1-cycle ALU ops completes 1 per cycle.
  const UopTiming first = step(alu(5, {5}));
  Cycle prev = first.complete;
  for (int i = 0; i < 50; ++i) {
    const UopTiming t = step(alu(5, {5}));
    EXPECT_EQ(t.complete, prev + 1);
    prev = t.complete;
  }
}

TEST_F(OoOCoreTest, IndependentOpsExploitWidth) {
  // Independent ALU ops on distinct registers: ~3 per cycle after warmup.
  Cycle start = 0, end = 0;
  for (int i = 0; i < 300; ++i) {
    const UopTiming t = step(alu(5 + (i % 20), {}));
    if (i == 50) start = t.complete;
    if (i == 290) end = t.complete;
  }
  const double per_cycle = 240.0 / static_cast<double>(end - start);
  EXPECT_GT(per_cycle, 2.0);  // close to the 3-wide limit.
}

TEST_F(OoOCoreTest, LoadsOverlapUnderPerfectDisambiguation) {
  // Warm nothing: all loads miss to DRAM; with ROB 40 and 9-uop iterations
  // several misses must be in flight simultaneously, so total time is far
  // below the serial sum of latencies.
  const int kLoads = 30;
  Cycle first_issue = kCycleNever, last_complete = 0;
  for (int i = 0; i < kLoads; ++i) {
    // Independent loads to distinct lines, each followed by a dependent op.
    const UopTiming t = step(load(6, 0x100000 + i * 4096));
    first_issue = std::min(first_issue, t.issue);
    last_complete = std::max(last_complete, t.complete);
    step(alu(7, {6}));
  }
  const Cycle span = last_complete - first_issue;
  // Serial DRAM latency would be ~150+ cycles per load.
  EXPECT_LT(span, kLoads * 100u);
}

TEST_F(OoOCoreTest, RobLimitsInFlightWindow) {
  // A load that misses to DRAM blocks commit; at most rob_entries uops may
  // dispatch past it.
  const UopTiming blocker = step(load(6, 0x900000));
  Cycle max_dispatch_during_block = 0;
  for (unsigned i = 0; i < config_.main_core.rob_entries + 10; ++i) {
    const UopTiming t = step(alu(8 + (i % 8), {}));
    if (i + 2 <= config_.main_core.rob_entries) {
      // Fits in the ROB alongside the blocker: dispatches early.
      max_dispatch_during_block = std::max(max_dispatch_during_block,
                                           t.dispatch);
    } else {
      // Window full: dispatch must wait for the blocker to commit.
      EXPECT_GT(t.dispatch, blocker.complete)
          << "uop " << i << " should have waited for the blocking load";
    }
  }
  EXPECT_LT(max_dispatch_during_block, blocker.complete);
}

TEST_F(OoOCoreTest, StoreToLoadForwardingIsFast) {
  step(store(0x4000, {5}));
  const UopTiming forwarded = step(load(6, 0x4000));
  EXPECT_TRUE(forwarded.store_forwarded);
  // Forwarded loads bypass the cache: complete shortly after issue.
  EXPECT_LE(forwarded.complete - forwarded.issue, 2u);
  const UopTiming not_forwarded = step(load(7, 0x8000));
  EXPECT_FALSE(not_forwarded.store_forwarded);
}

TEST_F(OoOCoreTest, PartialOverlapDoesNotForward) {
  step(store(0x4000, {5}));  // 8-byte store.
  UopDesc narrow = load(6, 0x4004);
  narrow.mem_size = 8;  // 8-byte load at +4 straddles the store's end.
  const UopTiming t = step(narrow);
  EXPECT_FALSE(t.store_forwarded);
}

TEST_F(OoOCoreTest, MispredictRedirectsFetch) {
  // Train nothing: the first taken branch with an empty BTB mispredicts
  // (predictor initialised weakly not-taken) or pays the BTB-miss bubble.
  UopDesc branch = alu(-1, {5});
  branch.ctrl = CtrlKind::kCond;
  branch.taken = true;
  branch.target = 0x100;
  const UopTiming bt = step(branch);
  const UopTiming after = step(alu(6, {}));
  if (bt.mispredicted) {
    EXPECT_GE(after.fetch,
              bt.complete + config_.main_core.redirect_penalty_cycles);
  } else {
    EXPECT_GE(after.fetch, bt.fetch);
  }
  EXPECT_GE(core_.branch_mispredicts(), bt.mispredicted ? 1u : 0u);
}

TEST_F(OoOCoreTest, WellPredictedLoopHasNoBubbles) {
  // Train a backwards branch, then verify fetch proceeds without redirect
  // gaps.
  for (int i = 0; i < 50; ++i) {
    UopDesc branch = alu(-1, {5});
    branch.pc = 0x2000;
    branch.ctrl = CtrlKind::kCond;
    branch.taken = true;
    branch.target = 0x1f00;
    step(branch);
  }
  const Cycle before = timings_.back().fetch;
  UopDesc branch = alu(-1, {5});
  branch.pc = 0x2000;
  branch.ctrl = CtrlKind::kCond;
  branch.taken = true;
  branch.target = 0x1f00;
  const UopTiming t = step(branch);
  EXPECT_FALSE(t.mispredicted);
  EXPECT_LE(t.fetch - before, 2u);
}

TEST_F(OoOCoreTest, UnpipelinedDivisionSerialisesUnit) {
  UopDesc div;
  div.cls = isa::ExecClass::kIntDiv;
  div.regs.dest = 5;
  const UopTiming d1 = step(div);
  const UopTiming d2 = step(div);
  // Second divide cannot start until the first finishes (single unit,
  // unpipelined).
  EXPECT_GE(d2.issue, d1.complete);
}

TEST_F(OoOCoreTest, PipelinedMultipliesOverlap) {
  UopDesc mul;
  mul.cls = isa::ExecClass::kIntMul;
  mul.regs.dest = 5;
  const UopTiming m1 = step(mul);
  mul.regs.dest = 6;
  const UopTiming m2 = step(mul);
  EXPECT_LE(m2.issue, m1.issue + 1);  // initiation interval 1.
}

TEST_F(OoOCoreTest, IntAluUnitIndexReported) {
  const UopTiming t = step(alu(5, {}));
  EXPECT_GE(t.int_alu_unit, 0);
  EXPECT_LT(t.int_alu_unit, static_cast<int>(config_.main_core.int_alus));
  const UopTiming ld = step(load(6, 0x5000));
  EXPECT_EQ(ld.int_alu_unit, -1);  // AGU use is not an ALU result.
}

TEST_F(OoOCoreTest, CommitBackPressureStallsDispatch) {
  // Simulate a detection-side stall: commit every uop 1000 cycles late and
  // watch dispatch throttle to the ROB drain rate.
  for (int i = 0; i < 10; ++i) step(alu(5 + i % 4, {}));
  const Cycle stall_until = last_commit_ + 1000;
  // Commit the next uops no earlier than stall_until.
  UopDesc desc = alu(9, {});
  desc.pc = 0x1000;
  desc.seq = seq_++;
  const UopTiming t = core_.schedule(desc);
  core_.retire(stall_until);
  last_commit_ = stall_until;
  commits_in_cycle_ = 1;
  // Fill the ROB: subsequent dispatches must eventually wait for
  // stall_until.
  Cycle latest_dispatch = t.dispatch;
  for (unsigned i = 0; i < config_.main_core.rob_entries + 4; ++i) {
    latest_dispatch = step(alu(10 + i % 4, {})).dispatch;
  }
  EXPECT_GT(latest_dispatch, stall_until);
}

}  // namespace
}  // namespace paradet::sim
