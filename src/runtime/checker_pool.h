// Bounded ticket pipeline for concurrent checker replay.
//
// The segment pipeline (sim/segment_pipeline) splits each sealed segment's
// processing into a thread-safe *work* half (functional replay, pure over
// an immutable snapshot) and an order-dependent *absorb* half (timing walk
// over shared icache state, detection bookkeeping). CheckerPool runs the
// two halves on a worker pool plus one absorber thread:
//
//   producer ──publish(t)──▶ [workers: claim tickets via atomic fetch_add,
//                             run work(t, worker) in any order]
//                                   │ per-ticket done flag
//                                   ▼
//                            [absorber: absorb(0), absorb(1), … strictly
//                             in ticket order]
//
// Tickets are dense 0..n-1 ordinals. Capacity bounds the number of
// published-but-not-absorbed tickets, giving backpressure: wait_slot()
// blocks the producer until slot `ticket % capacity` is free again. The
// same pattern as runtime::ParallelRunner's work-stealing index, extended
// with ordered downstream absorption so byte-identical artifacts survive
// any worker count.
//
// Exceptions from work/absorb are captured once and rethrown from the
// producer-side calls (publish/wait_slot/drain); the pool then refuses
// further tickets.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace paradet::runtime {

class CheckerPool {
 public:
  /// work(ticket, worker): thread-safe half, runs on any of `threads`
  /// workers; `worker` in [0, threads) selects per-thread scratch state.
  /// absorb(ticket): order-dependent half, called from the absorber thread
  /// strictly in ticket order.
  using WorkFn = std::function<void(std::uint64_t ticket, unsigned worker)>;
  using AbsorbFn = std::function<void(std::uint64_t ticket)>;

  /// Spawns `threads` workers (>= 1) plus one absorber. `capacity` bounds
  /// in-flight tickets (>= 1).
  CheckerPool(unsigned threads, std::size_t capacity, WorkFn work,
              AbsorbFn absorb);
  ~CheckerPool();

  CheckerPool(const CheckerPool&) = delete;
  CheckerPool& operator=(const CheckerPool&) = delete;

  /// Blocks until slot `ticket % capacity` is free (i.e. ticket - capacity
  /// has been absorbed). Call before writing the ticket's input into the
  /// shared slot. Rethrows any captured pipeline failure.
  void wait_slot(std::uint64_t ticket);

  /// Makes `ticket` visible to workers. Tickets must be published densely
  /// in order: 0, 1, 2, … Rethrows any captured pipeline failure.
  void publish(std::uint64_t ticket);

  /// Blocks until absorb(ticket) has returned. Rethrows failures.
  void wait_absorbed(std::uint64_t ticket);

  /// Blocks until every published ticket has been absorbed. Rethrows
  /// failures. The pool stays usable afterwards.
  void drain();

  unsigned threads() const { return threads_; }
  std::size_t capacity() const { return capacity_; }

  /// Thread budget policy: how many checker worker threads a single run
  /// should spawn so that `host_jobs` concurrent runs (campaign --jobs)
  /// plus their absorbers cannot oversubscribe the host. Returns
  /// min(requested, max(0, hardware_concurrency / host_jobs - 1));
  /// 0 means "run inline" (no pool). `requested` == 0 always maps to 0.
  static unsigned bounded(unsigned requested, unsigned host_jobs);

 private:
  void worker_loop(unsigned worker);
  void absorber_loop();
  void fail(std::exception_ptr error);
  void rethrow_if_failed_locked();

  const unsigned threads_;
  const std::size_t capacity_;
  WorkFn work_;
  AbsorbFn absorb_;

  std::mutex mutex_;
  std::condition_variable ticket_ready_;   // workers wait for published_
  std::condition_variable ticket_checked_; // absorber waits for done flags
  std::condition_variable progress_;       // producer waits for absorbed_
  std::uint64_t published_ = 0;  // tickets visible to workers
  std::uint64_t claimed_ = 0;    // next ticket a worker will take
  std::uint64_t absorbed_ = 0;   // tickets fully absorbed, in order
  std::vector<std::uint8_t> checked_;  // per-slot "work done" flag
  bool stop_ = false;
  std::exception_ptr error_;

  std::vector<std::thread> workers_;
  std::thread absorber_;
};

}  // namespace paradet::runtime
