// Tests for the runtime subsystem: worker-pool mechanics, order-independent
// per-task seeding, and the headline determinism contract — a parallel
// fault-injection campaign merges to bit-identical statistics at any
// --jobs level.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "runtime/campaign.h"
#include "runtime/parallel_runner.h"
#include "sim/checked_system.h"
#include "workloads/workloads.h"

namespace paradet::runtime {
namespace {

TEST(ParallelRunner, ResolveJobsDefaultsToHardware) {
  EXPECT_GE(resolve_jobs(0), 1u);
  EXPECT_EQ(resolve_jobs(5), 5u);
  EXPECT_EQ(ParallelRunner(3).jobs(), 3u);
}

TEST(ParallelRunner, MapCoversEveryIndexInOrder) {
  const ParallelRunner runner(8);
  const auto squares =
      runner.map(1000, [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 1000u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], i * i);
  }
}

TEST(ParallelRunner, ForEachRunsEveryTaskExactlyOnce) {
  const ParallelRunner runner(8);
  std::vector<std::atomic<int>> hits(512);
  runner.for_each(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelRunner, EmptyBatchIsANoOp) {
  const ParallelRunner runner(8);
  runner.for_each(0, [](std::size_t) { FAIL() << "task ran"; });
  EXPECT_TRUE(runner.map(0, [](std::size_t i) { return i; }).empty());
}

TEST(ParallelRunner, TaskExceptionPropagatesToCaller) {
  for (const unsigned jobs : {1u, 8u}) {
    const ParallelRunner runner(jobs);
    EXPECT_THROW(runner.for_each(64,
                                 [](std::size_t i) {
                                   if (i == 13) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
                 std::runtime_error);
  }
}

TEST(TaskSeeds, DerivationIsOrderIndependent) {
  constexpr std::uint64_t kSeed = 0xDEADBEEF;
  constexpr std::uint64_t kTasks = 1000;
  std::vector<std::uint64_t> forward, reverse(kTasks);
  for (std::uint64_t i = 0; i < kTasks; ++i) {
    forward.push_back(derive_task_seed(kSeed, i));
  }
  for (std::uint64_t i = kTasks; i-- > 0;) {
    reverse[i] = derive_task_seed(kSeed, i);
  }
  EXPECT_EQ(forward, reverse);
}

TEST(TaskSeeds, DistinctAcrossIndicesAndCampaigns) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t campaign = 0; campaign < 4; ++campaign) {
    for (std::uint64_t i = 0; i < 512; ++i) {
      seen.insert(derive_task_seed(campaign * 0x1234567ULL + 1, i));
    }
  }
  EXPECT_EQ(seen.size(), 4u * 512u);
}

// Cross-shard independence: shard K of N draws the subsequence of task
// seeds with index ≡ K (mod N), so the derivation must behave like a
// random function of the index — no collisions over a large range, and
// no structure between adjacent indices that a modulus could expose.

TEST(TaskSeeds, NoCollisionsAcrossAHundredThousandIndices) {
  constexpr std::uint64_t kIndices = 100'000;
  std::vector<std::uint64_t> seeds;
  seeds.reserve(kIndices);
  for (std::uint64_t i = 0; i < kIndices; ++i) {
    seeds.push_back(derive_task_seed(/*campaign_seed=*/0xD157A5CED, i));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(TaskSeeds, AdjacentIndicesAvalancheEveryOutputBit) {
  // Per-bit avalanche: across many adjacent-index pairs, each of the 64
  // output bits must flip roughly half the time, and the overall flip
  // count must be near 32. A weak mixer (e.g. seed = campaign ^ index)
  // fails both instantly; the bounds below are >10 sigma wide for a true
  // coin flip over this sample, and the derivation is deterministic, so
  // this cannot flake.
  constexpr std::uint64_t kPairs = 4096;
  std::array<std::uint64_t, 64> flips{};
  std::uint64_t total_flips = 0;
  for (std::uint64_t i = 0; i < kPairs; ++i) {
    const std::uint64_t diff = derive_task_seed(0x5EEDF, i) ^
                               derive_task_seed(0x5EEDF, i + 1);
    total_flips += static_cast<std::uint64_t>(std::popcount(diff));
    for (unsigned bit = 0; bit < 64; ++bit) {
      flips[bit] += (diff >> bit) & 1;
    }
  }
  const double mean_flips =
      static_cast<double>(total_flips) / static_cast<double>(kPairs);
  EXPECT_GT(mean_flips, 30.0);
  EXPECT_LT(mean_flips, 34.0);
  for (unsigned bit = 0; bit < 64; ++bit) {
    const double rate =
        static_cast<double>(flips[bit]) / static_cast<double>(kPairs);
    EXPECT_GT(rate, 0.40) << "output bit " << bit << " barely flips";
    EXPECT_LT(rate, 0.60) << "output bit " << bit << " flips too often";
  }
}

TEST(CampaignAggregate, MergeMatchesSequentialAbsorb) {
  sim::RunResult a, b;
  a.instructions = 100;
  a.main_done_cycle = 50;
  a.error_detected = true;
  a.counters.inc("x", 2);
  b.instructions = 200;
  b.main_done_cycle = 70;
  b.counters.inc("x", 3);
  b.counters.inc("y", 1);

  CampaignAggregate whole, left, right;
  whole.absorb(a);
  whole.absorb(b);
  left.absorb(a);
  right.absorb(b);
  left.merge(right);

  EXPECT_EQ(whole.runs, left.runs);
  EXPECT_EQ(whole.errors_detected, left.errors_detected);
  EXPECT_EQ(whole.instructions, left.instructions);
  EXPECT_EQ(whole.main_cycles.sum(), left.main_cycles.sum());
  EXPECT_EQ(whole.counters.sorted(), left.counters.sorted());
}

/// The acceptance campaign: 64 random transient strikes on a small kernel.
/// Every task derives its fault spec purely from its task seed.
CampaignResult run_fault_campaign(unsigned jobs) {
  const SystemConfig config = SystemConfig::standard();
  const auto workload =
      workloads::make_freqmine(workloads::Scale{.factor = 0.02});
  const auto assembled = workloads::assemble_or_die(workload);
  const auto clean = sim::run_program(config, assembled, 200'000);

  const Campaign campaign(/*tasks=*/64, /*seed=*/0x5EEDFULL);
  const ParallelRunner runner(jobs);
  return campaign.run(runner, [&](std::size_t, std::uint64_t task_seed) {
    SplitMix64 rng(task_seed);
    const core::FaultSite site_pool[] = {
        core::FaultSite::kMainArchReg,
        core::FaultSite::kMainStoreValue,
        core::FaultSite::kMainLoadValuePostLfu,
    };
    core::FaultInjector faults;
    core::FaultSpec spec;
    spec.site = site_pool[rng.next_below(std::size(site_pool))];
    spec.at_seq =
        100 + rng.next_below(clean.uops > 200 ? clean.uops - 200 : 1);
    spec.reg = 5 + static_cast<unsigned>(rng.next_below(25));
    spec.bit = static_cast<unsigned>(rng.next_below(64));
    faults.add(spec);
    return sim::run_program(config, assembled, 200'000, &faults);
  });
}

TEST(Campaign, MergedStatsBitIdenticalAcrossJobLevels) {
  const CampaignResult serial = run_fault_campaign(1);
  const CampaignResult parallel = run_fault_campaign(8);

  ASSERT_EQ(serial.runs.size(), 64u);
  ASSERT_EQ(parallel.runs.size(), 64u);

  // Per-task results land in the same slots regardless of scheduling.
  for (std::size_t i = 0; i < serial.runs.size(); ++i) {
    EXPECT_EQ(serial.runs[i].main_done_cycle,
              parallel.runs[i].main_done_cycle);
    EXPECT_EQ(serial.runs[i].instructions, parallel.runs[i].instructions);
    EXPECT_EQ(serial.runs[i].error_detected,
              parallel.runs[i].error_detected);
    EXPECT_EQ(serial.runs[i].final_state.pc, parallel.runs[i].final_state.pc);
  }

  // Merged aggregates are bit-identical: exact equality on the floating
  // point sums, not near-equality.
  const CampaignAggregate& a = serial.aggregate;
  const CampaignAggregate& b = parallel.aggregate;
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.errors_detected, b.errors_detected);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.segments, b.segments);
  EXPECT_EQ(a.main_cycles.count(), b.main_cycles.count());
  EXPECT_EQ(a.main_cycles.sum(), b.main_cycles.sum());
  EXPECT_EQ(a.main_cycles.min(), b.main_cycles.min());
  EXPECT_EQ(a.main_cycles.max(), b.main_cycles.max());
  EXPECT_EQ(a.counters.sorted(), b.counters.sorted());

  ASSERT_EQ(a.delay_ns.bins(), b.delay_ns.bins());
  EXPECT_EQ(a.delay_ns.bin_width(), b.delay_ns.bin_width());
  EXPECT_EQ(a.delay_ns.overflow(), b.delay_ns.overflow());
  for (std::size_t bin = 0; bin < a.delay_ns.bins(); ++bin) {
    EXPECT_EQ(a.delay_ns.bin_count(bin), b.delay_ns.bin_count(bin));
  }
  EXPECT_EQ(a.delay_ns.summary().sum(), b.delay_ns.summary().sum());

  // The campaign actually exercised the detection hardware.
  EXPECT_GT(a.errors_detected, 0u);
  EXPECT_GT(a.delay_ns.summary().count(), 0u);
}

}  // namespace
}  // namespace paradet::runtime
