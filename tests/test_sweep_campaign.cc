// SweepCampaign: a fig09-shaped (checker frequency x workload) sweep
// sharded over {1,3} processes x {1,8} jobs merges byte-identical to the
// unsharded --out artifact; baselines are computed exactly for the
// workloads each shard touches; flat sweeps index cells explicitly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.h"
#include "runtime/campaign.h"
#include "runtime/parallel_runner.h"
#include "runtime/serialize.h"
#include "runtime/sweep_campaign.h"
#include "sim/checked_system.h"
#include "workloads/workloads.h"

namespace paradet::runtime {
namespace {

constexpr std::uint64_t kSeed = 0x5EE9F19;
constexpr std::uint64_t kBudget = 200'000;
const std::uint64_t kFreqsMhz[] = {250, 500, 1000};

std::vector<workloads::Workload> tiny_suite() {
  std::vector<workloads::Workload> suite;
  for (const char* name : {"randacc", "freqmine"}) {
    workloads::Workload workload;
    EXPECT_TRUE(workloads::make_workload(name, workloads::Scale{0.02},
                                         workload));
    suite.push_back(std::move(workload));
  }
  return suite;
}

/// The fig09 cell: a checked run at the point's checker frequency.
sim::RunResult freq_cell(std::size_t point, std::size_t,
                         const AssemblyCache::Image& image, std::uint64_t) {
  SystemConfig config = SystemConfig::standard();
  config.checker.freq_mhz = kFreqsMhz[point];
  return sim::run_program(config, image, kBudget);
}

SweepCampaign make_sweep() {
  SweepCampaign sweep(std::size(kFreqsMhz), tiny_suite(), kSeed);
  SystemConfig baseline = SystemConfig::standard();
  baseline.detection.enabled = false;
  baseline.detection.simulate_checkers = false;
  sweep.enable_baselines(baseline, kBudget);
  return sweep;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// The unsharded single-process artifact bytes: the ground truth every
/// sharded variant must reproduce.
const std::string& reference_bytes() {
  static const std::string* bytes = [] {
    const std::string path = testing::TempDir() + "/paradet_sweep_whole.json";
    CampaignRunOptions options;
    options.out_path = path;
    make_sweep().run(ParallelRunner(1), options, freq_cell);
    auto* text = new std::string(slurp(path));
    std::remove(path.c_str());
    return text;
  }();
  return *bytes;
}

TEST(SweepCampaign, ShardedOutArtifactsMergeByteIdenticalToUnsharded) {
  const SweepCampaign sweep = make_sweep();
  for (const std::uint64_t shard_count : {1u, 3u}) {
    for (const unsigned jobs : {1u, 8u}) {
      std::vector<CampaignArtifact> shards;
      for (std::uint64_t k = 0; k < shard_count; ++k) {
        CampaignRunOptions options;
        options.shard = ShardSpec{k, shard_count};
        options.out_path = testing::TempDir() + "/paradet_sweep_shard_" +
                           std::to_string(k) + ".json";
        sweep.run(ParallelRunner(jobs), options, freq_cell);
        shards.push_back(read_artifact_file(options.out_path));
        std::remove(options.out_path.c_str());
      }
      EXPECT_EQ(to_json(merge_artifacts(std::move(shards))),
                reference_bytes())
          << "shards=" << shard_count << " jobs=" << jobs;
    }
  }
}

TEST(SweepCampaign, CellSlotsAndSlowdownsCoverTheGrid) {
  const SweepResult result =
      make_sweep().run(ParallelRunner(8), CampaignRunOptions{}, freq_cell);
  ASSERT_EQ(result.points, std::size(kFreqsMhz));
  ASSERT_EQ(result.workload_count, 2u);
  for (std::size_t p = 0; p < result.points; ++p) {
    for (std::size_t w = 0; w < result.workload_count; ++w) {
      ASSERT_NE(result.cell(p, w), nullptr);
      EXPECT_GT(result.cell(p, w)->main_done_cycle, 0u);
      EXPECT_GE(result.slowdown(p, w), 1.0);
    }
  }
  // Whole campaign: every workload touched, every baseline computed.
  for (std::size_t w = 0; w < result.workload_count; ++w) {
    EXPECT_TRUE(result.workload_touched[w]);
    ASSERT_NE(result.baseline(w), nullptr);
    EXPECT_GT(result.baseline(w)->main_done_cycle, 0u);
  }
}

TEST(SweepCampaign, BaselinesOnlyForWorkloadsTheShardTouches) {
  // 3 points x 2 workloads = 6 cells; cell % 2 is the workload, so shard
  // 0/2 owns cells {0,2,4} — all of workload 0 and none of workload 1.
  CampaignRunOptions options;
  options.shard = ShardSpec{0, 2};
  const SweepResult result =
      make_sweep().run(ParallelRunner(4), options, freq_cell);

  EXPECT_TRUE(result.workload_touched[0]);
  EXPECT_FALSE(result.workload_touched[1]);
  EXPECT_NE(result.baseline(0), nullptr);
  EXPECT_EQ(result.baseline(1), nullptr);
  for (std::size_t p = 0; p < result.points; ++p) {
    EXPECT_NE(result.cell(p, 0), nullptr);
    EXPECT_EQ(result.cell(p, 1), nullptr);  // owned by shard 1/2.
  }
}

TEST(SweepCampaign, FlatSweepNamesWorkloadPerCell) {
  // Heterogeneous list (the ablations shape): cells 0 and 2 share
  // workload 0, cell 1 uses workload 1; `point` is the cell index.
  std::vector<std::size_t> seen_points;
  std::vector<std::size_t> seen_workloads;
  std::mutex mutex;
  auto sweep = SweepCampaign::flat({0, 1, 0}, tiny_suite(), kSeed);
  EXPECT_EQ(sweep.tasks(), 3u);
  const SweepResult result = sweep.run(
      ParallelRunner(1), CampaignRunOptions{},
      [&](std::size_t point, std::size_t workload, const AssemblyCache::Image&,
          std::uint64_t) {
        const std::lock_guard<std::mutex> lock(mutex);
        seen_points.push_back(point);
        seen_workloads.push_back(workload);
        return sim::RunResult{};
      });
  EXPECT_EQ(seen_points, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(seen_workloads, (std::vector<std::size_t>{0, 1, 0}));
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NE(result.cell_at(c), nullptr);
  }
}

TEST(SweepCampaign, FlatSweepRejectsOutOfRangeWorkloadIndex) {
  EXPECT_THROW(SweepCampaign::flat({0, 2}, tiny_suite(), kSeed),
               std::invalid_argument);
}

TEST(SweepCampaign, InvalidShardSpecIsRejected) {
  CampaignRunOptions options;
  options.shard = ShardSpec{2, 2};
  EXPECT_THROW(
      make_sweep().run(ParallelRunner(1), options, freq_cell),
      std::invalid_argument);
}

TEST(SweepCampaign, CheckpointResumeMatchesUninterruptedBytes) {
  // A sweep interrupted mid-campaign resumes from its checkpoint into the
  // reference bytes — the sweep layer inherits Campaign's whole story.
  const std::string path = testing::TempDir() + "/paradet_sweep_ckpt.json";
  std::remove(path.c_str());
  CampaignRunOptions options;
  options.checkpoint_path = path;
  options.checkpoint_every = 2;
  options.out_path = testing::TempDir() + "/paradet_sweep_resumed.json";

  const SweepCampaign sweep = make_sweep();
  std::atomic<unsigned> launched{0};
  EXPECT_THROW(
      sweep.run(ParallelRunner(1), options,
                [&](std::size_t p, std::size_t w, const AssemblyCache::Image& image,
                    std::uint64_t seed) {
                  if (launched.fetch_add(1) >= 4) {
                    throw std::runtime_error("injected crash");
                  }
                  return freq_cell(p, w, image, seed);
                }),
      std::runtime_error);

  sweep.run(ParallelRunner(1), options, freq_cell);
  EXPECT_EQ(slurp(options.out_path), reference_bytes());
  std::remove(path.c_str());
  std::remove(options.out_path.c_str());
}

TEST(PrintTransposed, RequiresOneColumnPerPoint) {
  const SweepResult result =
      make_sweep().run(ParallelRunner(8), CampaignRunOptions{}, freq_cell);
  TableSpec spec;  // no columns.
  EXPECT_THROW(print_transposed(result, spec,
                                [](std::size_t, std::size_t) { return 0.0; }),
               std::invalid_argument);
}

}  // namespace
}  // namespace paradet::runtime
