// Design-space exploration example: the §IV-E trade-off between detection
// latency and overhead, explored with the public API the way an SoC
// architect sizing the scheme for a new chip would.
//
// Sweeps (a) the number of checker cores at fixed aggregate GHz and
// (b) the log size at fixed core count, reporting slowdown, mean/max
// detection delay and the area cost of each point; then prints the
// "cheapest configuration meeting a 2 us mean-delay, 2% slowdown budget".
// The sweep runs as one runtime::SweepCampaign (one workload, one cell
// per design point), so it fans out on the worker pool (`--jobs=N`),
// shards across processes (`--shard=K/N --out=artifact.json`, merged
// back with merge_results) and checkpoints/restarts
// (`--checkpoint=ckpt.json`) exactly like the figure reproductions.
#include <cstdio>
#include <exception>
#include <vector>

#include "model/area_power.h"
#include "runtime/checker_pool.h"
#include "runtime/sweep_campaign.h"
#include "sim/checked_system.h"
#include "workloads/workloads.h"

namespace {

constexpr std::uint64_t kBudget = 2'000'000;

struct SweepSpec {
  unsigned cores;
  std::uint64_t freq_mhz;
  std::uint64_t log_bytes;
};

int run(int argc, char** argv) {
  using namespace paradet;
  const RuntimeOptions host =
      RuntimeOptions::from_args(argc, argv, /*campaign_flags=*/true);
  const runtime::ParallelRunner runner(host.jobs);
  const CheckerExec checker(
      runtime::CheckerPool::bounded(host.checker_threads, host.jobs),
      host.checker_batch);
  const auto workload =
      workloads::make_facesim(workloads::Scale{.factor = 0.4});

  // (a) cores x frequency at constant aggregate 12 core-GHz, then
  // (b) log size at the default 12 cores @ 1 GHz.
  std::vector<SweepSpec> specs = {
      {3, 4000, 36 * 1024},
      {6, 2000, 36 * 1024},
      {12, 1000, 36 * 1024},
      {24, 500, 36 * 1024},
  };
  const std::size_t log_sweep_begin = specs.size();
  for (const std::uint64_t kib : {9ull, 18ull, 36ull, 72ull, 144ull}) {
    specs.push_back({12, 1000, kib * 1024});
  }

  const auto config_for = [&](std::size_t i) {
    SystemConfig config = SystemConfig::standard();
    config.checker.num_cores = specs[i].cores;
    config.checker.freq_mhz = specs[i].freq_mhz;
    config.log.segments = specs[i].cores;
    config.log.total_bytes = specs[i].log_bytes;
    return config;
  };

  runtime::SweepCampaign sweep(specs.size(), {workload}, /*seed=*/0xDE5160);
  sweep.enable_baselines(SystemConfig::baseline_unchecked(), kBudget);
  const auto result = sweep.run(
      runner, runtime::CampaignRunOptions::from_runtime(host),
      [&](std::size_t point, std::size_t, const runtime::AssemblyCache::Image& image,
          std::uint64_t) {
        return sim::run_program(config_for(point), image, kBudget,
                                nullptr, checker);
      });

  const sim::RunResult* baseline = result.baseline(0);
  std::printf("design-space sweep on %s (%u workers)\n",
              workload.name.c_str(), runner.jobs());
  if (baseline != nullptr) {
    std::printf("baseline: %llu cycles\n\n",
                static_cast<unsigned long long>(baseline->main_done_cycle));
  } else {
    std::printf("baseline: (no design point on this shard)\n\n");
  }

  struct Point {
    SweepSpec spec;
    double slowdown = 0.0;
    double mean_delay_ns = 0.0;
    double max_delay_us = 0.0;
    double area_mm2 = 0.0;
    bool owned = false;
  };
  std::vector<Point> points(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    points[i].spec = specs[i];
    const sim::RunResult* cell = result.cell(i, 0);
    if (cell == nullptr) continue;  // design point owned by another shard.
    points[i].owned = true;
    points[i].slowdown = static_cast<double>(cell->main_done_cycle) /
                         static_cast<double>(baseline->main_done_cycle);
    points[i].mean_delay_ns = cell->delay_ns.summary().mean();
    points[i].max_delay_us = cell->delay_ns.summary().max() / 1000.0;
    points[i].area_mm2 = model::estimate_area(config_for(i)).detection_mm2();
  }

  std::printf("%6s %8s %8s %9s %12s %11s %9s\n", "cores", "MHz", "logKiB",
              "slowdown", "mean_ns", "max_us", "mm2");
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i == 0) {
      std::printf("-- constant aggregate throughput (12 core-GHz) --\n");
    } else if (i == log_sweep_begin) {
      std::printf("-- log size sweep (12 cores @ 1 GHz) --\n");
    }
    const Point& point = points[i];
    if (!point.owned) {
      std::printf("%6u %8llu %8llu %9s %12s %11s %9s\n", point.spec.cores,
                  static_cast<unsigned long long>(point.spec.freq_mhz),
                  static_cast<unsigned long long>(point.spec.log_bytes / 1024),
                  "-", "-", "-", "-");
      continue;
    }
    std::printf("%6u %8llu %8llu %9.4f %12.0f %11.1f %9.3f\n",
                point.spec.cores,
                static_cast<unsigned long long>(point.spec.freq_mhz),
                static_cast<unsigned long long>(point.spec.log_bytes / 1024),
                point.slowdown, point.mean_delay_ns, point.max_delay_us,
                point.area_mm2);
  }

  // Pick the cheapest point meeting the latency/overhead budget (among the
  // points this shard ran; a sharded sweep compares notes via the merged
  // artifact).
  const Point* best = nullptr;
  for (const auto& point : points) {
    if (!point.owned) continue;
    if (point.slowdown > 1.02 || point.mean_delay_ns > 2000.0) continue;
    if (best == nullptr || point.area_mm2 < best->area_mm2) best = &point;
  }
  if (best != nullptr) {
    std::printf("\ncheapest point meeting <=2%% slowdown and <=2us mean "
                "delay:\n  %u cores @ %llu MHz, %llu KiB log  "
                "(%.3f mm^2, slowdown %.4f, mean %.0f ns)\n",
                best->spec.cores,
                static_cast<unsigned long long>(best->spec.freq_mhz),
                static_cast<unsigned long long>(best->spec.log_bytes / 1024),
                best->area_mm2, best->slowdown, best->mean_delay_ns);
  } else {
    std::printf("\nno swept point met the budget\n");
  }
  if (!result.artifact.shard.whole()) {
    std::printf("shard %llu/%llu: %zu of %llu design points ran here; merge "
                "--out artifacts with merge_results\n",
                static_cast<unsigned long long>(result.artifact.shard.index),
                static_cast<unsigned long long>(result.artifact.shard.count),
                result.artifact.runs.size(),
                static_cast<unsigned long long>(result.artifact.tasks));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    // A checkpoint from another campaign or an unwritable --out path
    // should end as a readable error, not std::terminate.
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 1;
  }
}
