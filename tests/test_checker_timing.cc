// Tests for the in-order checker-core timing model (§IV-B, fig. 4).
#include <gtest/gtest.h>

#include "common/config.h"
#include "sim/checker_timing.h"

namespace paradet::sim {
namespace {

core::CheckerInstRecord record(isa::Opcode op, Addr pc,
                               std::uint8_t entries = 0,
                               std::uint32_t first_entry = 0,
                               bool taken = false) {
  core::CheckerInstRecord r;
  r.inst.op = op;
  r.inst.rd = 5;
  r.inst.rs1 = 6;
  r.inst.rs2 = 7;
  r.pc = pc;
  r.entries_consumed = entries;
  r.first_entry = first_entry;
  r.branch_taken = taken;
  return r;
}

class CheckerTimingTest : public ::testing::Test {
 protected:
  CheckerTimingTest()
      : shared_(16 * 1024),
        core_(config(), shared_, /*l2_latency_checker_cycles=*/5) {}

  static CheckerConfig config() {
    CheckerConfig cfg;
    return cfg;
  }

  SharedCheckerIcache shared_;
  CheckerCoreTiming core_;
};

TEST_F(CheckerTimingTest, ScalarThroughputIsOnePerCycle) {
  std::vector<core::CheckerInstRecord> trace;
  for (int i = 0; i < 100; ++i) {
    auto r = record(isa::Opcode::kAdd, 0x1000 + (i % 16) * 4);
    r.inst.rd = static_cast<RegIndex>(5 + i % 8);
    r.inst.rs1 = 0;
    r.inst.rs2 = 0;
    trace.push_back(r);
  }
  const auto cold = core_.walk(trace, 0);
  const auto warm = core_.walk(trace, 0);
  const CheckerConfig cfg = config();
  // Warm i-cache: wakeup + ~1 cycle per instruction + validation.
  EXPECT_LE(warm.local_cycles, cfg.wakeup_cycles + 100 + 2 +
                                   cfg.checkpoint_validate_cycles);
  EXPECT_GE(cold.local_cycles, warm.local_cycles);
}

TEST_F(CheckerTimingTest, DependentLatencyStalls) {
  // A chain of dependent multiplies runs at the multiply latency.
  std::vector<core::CheckerInstRecord> trace;
  for (int i = 0; i < 20; ++i) {
    auto r = record(isa::Opcode::kMul, 0x1000);
    r.inst.rd = 5;
    r.inst.rs1 = 5;
    r.inst.rs2 = 5;
    trace.push_back(r);
  }
  core_.walk(trace, 0);  // warm the L0.
  const auto result = core_.walk(trace, 0);
  const unsigned mul_latency = isa::exec_latency(isa::ExecClass::kIntMul);
  EXPECT_GE(result.local_cycles, 20u * mul_latency);
}

TEST_F(CheckerTimingTest, TakenBranchesAddBubbles) {
  std::vector<core::CheckerInstRecord> straight, branchy;
  for (int i = 0; i < 50; ++i) {
    straight.push_back(record(isa::Opcode::kAdd, 0x1000));
    branchy.push_back(
        record(isa::Opcode::kBeq, 0x1000, 0, 0, /*taken=*/true));
  }
  core_.walk(straight, 0);
  const auto fast = core_.walk(straight, 0);
  const auto slow = core_.walk(branchy, 0);
  EXPECT_GE(slow.local_cycles,
            fast.local_cycles + 49u * config().taken_branch_bubble);
}

TEST_F(CheckerTimingTest, EntryCheckCyclesMonotoneAndComplete) {
  std::vector<core::CheckerInstRecord> trace;
  std::uint32_t entry = 0;
  for (int i = 0; i < 30; ++i) {
    const bool is_load = i % 3 == 0;
    auto r = record(is_load ? isa::Opcode::kLd : isa::Opcode::kAdd,
                    0x1000 + (i % 16) * 4, is_load ? 1 : 0, entry);
    if (is_load) ++entry;
    trace.push_back(r);
  }
  const auto result = core_.walk(trace, entry);
  ASSERT_EQ(result.entry_check_cycles.size(), entry);
  for (std::size_t i = 1; i < result.entry_check_cycles.size(); ++i) {
    EXPECT_GE(result.entry_check_cycles[i], result.entry_check_cycles[i - 1]);
  }
  for (const Cycle c : result.entry_check_cycles) {
    EXPECT_GT(c, 0u);
    EXPECT_LE(c, result.local_cycles);
  }
}

TEST_F(CheckerTimingTest, MacroOpsConsumeTwoEntries) {
  std::vector<core::CheckerInstRecord> trace;
  auto ldp = record(isa::Opcode::kLdp, 0x1000, 2, 0);
  ldp.inst.rd = 10;
  trace.push_back(ldp);
  const auto result = core_.walk(trace, 2);
  ASSERT_EQ(result.entry_check_cycles.size(), 2u);
  EXPECT_GT(result.entry_check_cycles[1], 0u);
}

TEST_F(CheckerTimingTest, ValidationCostAppended) {
  const std::vector<core::CheckerInstRecord> empty;
  const auto result = core_.walk(empty, 0);
  EXPECT_GE(result.local_cycles, config().checkpoint_validate_cycles);
}

TEST(SharedCheckerIcacheTest, HitAfterFill) {
  SharedCheckerIcache cache(16 * 1024);
  EXPECT_FALSE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x1010 & ~Addr{63}));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(SharedCheckerIcacheTest, SharedAcrossCores) {
  // Code fetched by one checker core warms the L1I for the others --
  // the sharing argument of §IV-B.
  SharedCheckerIcache shared(16 * 1024);
  CheckerConfig cfg;
  CheckerCoreTiming first(cfg, shared, 5);
  CheckerCoreTiming second(cfg, shared, 5);
  std::vector<core::CheckerInstRecord> trace;
  for (int i = 0; i < 64; ++i) {
    trace.push_back(record(isa::Opcode::kAdd, 0x1000 + i * 4));
  }
  const auto cold = first.walk(trace, 0);
  // Second core: cold L0 but warm shared L1 -> faster than a fully cold
  // walk (which would pay the L2 latency per line).
  const auto warm_shared = second.walk(trace, 0);
  EXPECT_LT(warm_shared.local_cycles, cold.local_cycles);
}

TEST(SharedCheckerIcacheTest, EvictsLru) {
  SharedCheckerIcache cache(/*size=*/64 * 4, /*line=*/64, /*assoc=*/4);
  // One set of 4 ways: fill 4 lines, touch the first, insert a fifth.
  for (Addr a = 0; a < 4; ++a) cache.access(a << 6);
  EXPECT_TRUE(cache.access(0));
  cache.access(4ull << 6);  // evicts line 1 (LRU), not line 0.
  EXPECT_TRUE(cache.access(0));
  EXPECT_FALSE(cache.access(1ull << 6));
}

}  // namespace
}  // namespace paradet::sim
