// The orchestrator's policy pieces — shard argv/path construction, the
// straggler decision and checkpoint-progress detection — as pure unit
// tests, plus the whole spawn/retry/straggler/inject-kill loop run
// against a MockShardLauncher (no subprocesses, scripted exits) so
// restart budgets and kill ordering are asserted deterministically. The
// real fork/exec machinery still runs end-to-end in the
// `shard_cli_smoke` CTest (scripts/shard_smoke_test.sh drives
// campaign_orchestrator with an injected shard kill and cmp-checks the
// merged artifact) and in the CI orchestrator-smoke job.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/campaign.h"
#include "runtime/orchestrator.h"
#include "runtime/serialize.h"
#include "runtime/shard_launcher.h"

namespace paradet::runtime {
namespace {

OrchestratorOptions options_under(const std::string& run_dir) {
  OrchestratorOptions options;
  options.shards = 3;
  options.jobs_per_shard = 4;
  options.run_dir = run_dir;
  return options;
}

TEST(Orchestrator, ShardArgvAppendsTheCampaignFlagsLast) {
  const OrchestratorOptions options = options_under("/tmp/run");
  const std::vector<std::string> argv =
      shard_argv({"./bench_fig09", "--scale=0.05", "--checkpoint-every=1"},
                 options, 1);
  const std::vector<std::string> expected = {
      "./bench_fig09",          "--scale=0.05",
      "--checkpoint-every=1",   "--jobs=4",
      "--shard=1/3",            "--out=/tmp/run/shard_1.json",
      "--checkpoint=/tmp/run/shard_1.ckpt.json",
  };
  EXPECT_EQ(argv, expected);
}

TEST(Orchestrator, ShardArgvDropsCallerCampaignFlags) {
  // The orchestrator owns sharding/artifact/checkpoint paths. A caller's
  // own spellings — --journal especially, which drivers reject alongside
  // the appended --checkpoint — must be dropped, not passed through to
  // make every shard exit 2.
  const OrchestratorOptions options = options_under("/tmp/run");
  const std::vector<std::string> argv = shard_argv(
      {"./bench_fig09", "--journal=mine.json", "--scale=0.05",
       "--shard=0/9", "--out=mine.json", "--checkpoint=mine.ckpt"},
      options, 0);
  const std::vector<std::string> expected = {
      "./bench_fig09", "--scale=0.05",
      "--jobs=4",      "--shard=0/3",
      "--out=/tmp/run/shard_0.json",
      "--checkpoint=/tmp/run/shard_0.ckpt.json",
  };
  EXPECT_EQ(argv, expected);
}

TEST(Orchestrator, RunDirectoryLayoutIsPerShard) {
  const OrchestratorOptions options = options_under("dir");
  EXPECT_EQ(shard_out_path(options, 0), "dir/shard_0.json");
  EXPECT_EQ(shard_checkpoint_path(options, 2), "dir/shard_2.ckpt.json");
  EXPECT_EQ(shard_log_path(options, 1), "dir/shard_1.log");
}

TEST(Orchestrator, StragglerPolicyWaitsForAQuorum) {
  // Disabled entirely at factor 0.
  EXPECT_FALSE(is_straggler(100.0, {1.0, 1.0}, 3, 0.0));
  // No finished shards: nothing to compare against.
  EXPECT_FALSE(is_straggler(100.0, {}, 3, 3.0));
  // 1 of 3 finished is under the half-quorum.
  EXPECT_FALSE(is_straggler(100.0, {1.0}, 3, 3.0));
  // Quorum reached: 3x the median flags, under it does not.
  EXPECT_TRUE(is_straggler(3.5, {1.0, 1.1}, 3, 3.0));
  EXPECT_FALSE(is_straggler(2.5, {1.0, 1.1}, 3, 3.0));
  // Near-instant medians don't brand everything a straggler: the
  // threshold has an absolute floor.
  EXPECT_FALSE(is_straggler(0.05, {0.001, 0.001}, 2, 2.0));
}

TEST(Orchestrator, CheckpointProgressSeesSnapshotOrJournaledRecord) {
  const std::string ckpt =
      testing::TempDir() + "/paradet_orch_progress.json";
  const std::string journal = journal_path_for(ckpt);
  std::remove(ckpt.c_str());
  std::remove(journal.c_str());

  // Nothing on disk: no progress.
  EXPECT_FALSE(checkpoint_has_progress(ckpt));

  // A header-only journal is an empty checkpoint: still no progress.
  const JournalHeader header{1, 8, 0, ShardSpec{}};
  JournalWriter writer(journal, header);
  EXPECT_FALSE(checkpoint_has_progress(ckpt));

  // One journaled record is resumable progress.
  writer.append({0, sim::RunResult{}});
  EXPECT_TRUE(checkpoint_has_progress(ckpt));

  // A snapshot alone (legacy or compacted) is progress too.
  std::remove(journal.c_str());
  CampaignArtifact snapshot;
  snapshot.seed = 1;
  snapshot.tasks = 8;
  write_artifact_file(ckpt, snapshot);
  EXPECT_TRUE(checkpoint_has_progress(ckpt));
  std::remove(ckpt.c_str());
}

TEST(Orchestrator, SetupErrorsThrowBeforeAnythingSpawns) {
  OrchestratorOptions options = options_under(testing::TempDir() + "/orch");
  EXPECT_THROW(orchestrate({}, options), std::invalid_argument);

  options.shards = 0;
  EXPECT_THROW(orchestrate({"/bin/true"}, options), std::invalid_argument);

  options = options_under("");
  EXPECT_THROW(orchestrate({"/bin/true"}, options), std::invalid_argument);

  options = options_under(testing::TempDir() + "/orch");
  options.inject_kill = 3;  // shards are 0..2.
  EXPECT_THROW(orchestrate({"/bin/true"}, options), std::invalid_argument);

  options.inject_kill = -1;
  EXPECT_THROW(orchestrate({"/no/such/driver"}, options), std::runtime_error);
}

// --- Launcher argv helpers (pure) -------------------------------------------

TEST(ShardLauncher, ShellQuoteEscapesEmbeddedQuotes) {
  EXPECT_EQ(shell_quote_command({"./driver", "--scale=0.05"}),
            "'./driver' '--scale=0.05'");
  // An embedded single quote closes the quote, escapes, and reopens —
  // the one construct POSIX sh needs for arbitrary strings.
  EXPECT_EQ(shell_quote_command({"a'b"}), "'a'\\''b'");
}

TEST(ShardLauncher, SshWrapCreatesRunDirAndExecs) {
  SshLauncherOptions ssh;
  ssh.host = "node7";
  ssh.ssh_flags = {"-o", "BatchMode=yes"};
  const std::vector<std::string> wrapped = ssh_wrap_argv(
      ssh, {"./driver", "--out=/tmp/run/shard_0.json"});
  ASSERT_EQ(wrapped.size(), 5u);
  EXPECT_EQ(wrapped[0], "ssh");
  EXPECT_EQ(wrapped[1], "-o");
  EXPECT_EQ(wrapped[2], "BatchMode=yes");
  EXPECT_EQ(wrapped[3], "node7");
  // The remote command creates the run dir (no orchestrator over there
  // to do it) and execs the identically-quoted driver argv.
  EXPECT_EQ(wrapped[4],
            "mkdir -p '/tmp/run' && exec "
            "'./driver' '--out=/tmp/run/shard_0.json'");
}

TEST(ShardLauncher, RsyncBackCopiesRemoteToLocalPath) {
  SshLauncherOptions ssh;
  ssh.host = "node7";
  const std::vector<std::string> argv =
      rsync_back_argv(ssh, "/tmp/run/shard_0.json");
  const std::vector<std::string> expected = {
      "rsync", "-a", "node7:/tmp/run/shard_0.json", "/tmp/run/shard_0.json"};
  EXPECT_EQ(argv, expected);
}

// --- The monitor loop against the mock launcher -----------------------------

constexpr std::uint64_t kMockTasks = 6;

/// The artifact shard `index` of `count` would write: every owned task
/// with a default RunResult, aggregate absorbed in task order — enough
/// for merge_artifacts to verify coverage and fold for real.
CampaignArtifact mock_shard_artifact(std::uint64_t index,
                                     std::uint64_t count) {
  CampaignArtifact artifact;
  artifact.seed = 42;
  artifact.tasks = kMockTasks;
  artifact.fingerprint = 0xF00D;
  artifact.shard = ShardSpec{index, count};
  for (std::uint64_t task = 0; task < artifact.tasks; ++task) {
    if (!artifact.shard.owns(task)) continue;
    artifact.runs.push_back({task, sim::RunResult{}});
    artifact.aggregate.absorb(artifact.runs.back().result);
  }
  return artifact;
}

/// Fresh run dir + options wired for fast mock polling.
OrchestratorOptions mock_options(const std::string& name,
                                 std::uint64_t shards) {
  OrchestratorOptions options;
  options.shards = shards;
  options.run_dir = testing::TempDir() + "/" + name;
  options.poll_ms = 1;
  std::filesystem::remove_all(options.run_dir);
  return options;
}

/// Hook that materializes the succeeding shard's artifact, so the
/// orchestrator's merge path runs against real files.
void write_artifacts_on_success(MockShardLauncher& mock,
                                const OrchestratorOptions& options) {
  mock.on_success([&options](std::uint64_t index,
                             const std::vector<std::string>&) {
    write_artifact_file(shard_out_path(options, index),
                        mock_shard_artifact(index, options.shards));
  });
}

TEST(Orchestrator, MockRunMergesShardArtifactsForReal) {
  OrchestratorOptions options = mock_options("orch_mock_merge", 3);
  MockShardLauncher mock;
  write_artifacts_on_success(mock, options);

  const OrchestratorResult result = orchestrate({"driver"}, options, mock);
  EXPECT_TRUE(result.merged_ok);
  EXPECT_EQ(result.restarts, 0u);

  const CampaignArtifact merged = read_artifact_file(result.merged_path);
  EXPECT_TRUE(merged.shard.whole());
  EXPECT_EQ(merged.runs.size(), kMockTasks);
  EXPECT_EQ(merged.aggregate.runs, kMockTasks);
}

TEST(Orchestrator, RetryBudgetExhaustionGivesUpAndReportsTheShard) {
  OrchestratorOptions options = mock_options("orch_mock_retry", 2);
  options.retries = 2;
  MockShardLauncher mock;
  write_artifacts_on_success(mock, options);
  // Shard 1 fails every attempt; its budget is 1 + retries launches.
  mock.script(1, {{MockOutcome::Kind::kFail, 3, 0, 0}});

  const OrchestratorResult result = orchestrate({"driver"}, options, mock);
  EXPECT_FALSE(result.merged_ok);
  EXPECT_EQ(mock.launches(0), 1u);
  EXPECT_EQ(mock.launches(1), 1u + options.retries);
  EXPECT_EQ(result.restarts, options.retries);
  EXPECT_TRUE(result.shards[0].succeeded);
  EXPECT_FALSE(result.shards[1].succeeded);
  EXPECT_EQ(result.shards[1].last_exit_code, 3);
  EXPECT_EQ(result.shards[1].launches, 1u + options.retries);
  // Giving up must not leave a merged artifact behind.
  EXPECT_FALSE(std::filesystem::exists(result.merged_path));
}

TEST(Orchestrator, FailedShardRecoversWithinItsRetryBudget) {
  OrchestratorOptions options = mock_options("orch_mock_recover", 2);
  options.retries = 2;
  MockShardLauncher mock;
  write_artifacts_on_success(mock, options);
  // Crash (signal), then a clean resume — one retry consumed.
  mock.script(0, {{MockOutcome::Kind::kFail, -1, 9, 0},
                  {MockOutcome::Kind::kSucceed}});

  const OrchestratorResult result = orchestrate({"driver"}, options, mock);
  EXPECT_TRUE(result.merged_ok);
  EXPECT_EQ(result.restarts, 1u);
  EXPECT_EQ(mock.launches(0), 2u);
  EXPECT_TRUE(result.shards[0].succeeded);
}

TEST(Orchestrator, StragglerIsKilledAfterQuorumThenRestarted) {
  OrchestratorOptions options = mock_options("orch_mock_straggler", 3);
  options.straggler_factor = 2.0;
  MockShardLauncher mock;
  write_artifacts_on_success(mock, options);
  // Shards 0 and 1 finish on their first poll; shard 2 hangs until the
  // straggler police kill it (the threshold floor is 0.1s of wall time),
  // then succeeds on its checkpoint restart.
  mock.script(2, {{MockOutcome::Kind::kHang},
                  {MockOutcome::Kind::kSucceed}});

  const OrchestratorResult result = orchestrate({"driver"}, options, mock);
  EXPECT_TRUE(result.merged_ok);
  EXPECT_EQ(result.restarts, 1u);
  EXPECT_TRUE(result.shards[2].straggler_killed);
  EXPECT_TRUE(result.shards[2].succeeded);
  EXPECT_EQ(mock.launches(2), 2u);

  // Ordering: the kill decision waited for the finished-shard quorum,
  // and the relaunch came only after the killed run's exit surfaced.
  const std::vector<std::string>& events = mock.events();
  const auto at = [&events](const std::string& event) {
    const auto it = std::find(events.begin(), events.end(), event);
    EXPECT_NE(it, events.end()) << "missing event: " << event;
    return it - events.begin();
  };
  EXPECT_LT(at("exit 0 clean"), at("kill 2"));
  EXPECT_LT(at("exit 1 clean"), at("kill 2"));
  EXPECT_LT(at("kill 2"), at("exit 2 failed"));
  const auto relaunch = std::find(events.begin() + at("exit 2 failed"),
                                  events.end(), "launch 2");
  ASSERT_NE(relaunch, events.end());
  EXPECT_LT(std::find(events.begin(), events.end(), "kill 2"), relaunch);
}

TEST(Orchestrator, InjectKillDrillDoesNotEatTheRetryBudget) {
  OrchestratorOptions options = mock_options("orch_mock_drill", 2);
  options.retries = 0;  // the drill's relaunch must still be allowed.
  options.inject_kill = 0;
  MockShardLauncher mock;
  write_artifacts_on_success(mock, options);
  mock.set_checkpoint_progress(true);
  // The target hangs so the kill always lands, then resumes cleanly.
  mock.script(0, {{MockOutcome::Kind::kHang},
                  {MockOutcome::Kind::kSucceed}});

  const OrchestratorResult result = orchestrate({"driver"}, options, mock);
  EXPECT_TRUE(result.merged_ok);
  EXPECT_EQ(result.restarts, 1u);
  EXPECT_TRUE(result.shards[0].inject_kill_fired);
  EXPECT_TRUE(result.shards[0].succeeded);
  EXPECT_EQ(mock.launches(0), 2u);
}

TEST(Orchestrator, InjectKillWaitsForCheckpointProgress) {
  OrchestratorOptions options = mock_options("orch_mock_drill_wait", 2);
  options.inject_kill = 0;
  MockShardLauncher mock;
  write_artifacts_on_success(mock, options);
  // No checkpoint progress ever: the kill must not fire; the target
  // finishes cleanly and is relaunched once anyway so the resume path
  // still runs (it takes a few polls, long enough to be observed).
  mock.set_checkpoint_progress(false);
  mock.script(0, {{MockOutcome::Kind::kSucceed, 0, 0, 3},
                  {MockOutcome::Kind::kSucceed}});

  const OrchestratorResult result = orchestrate({"driver"}, options, mock);
  EXPECT_TRUE(result.merged_ok);
  EXPECT_TRUE(result.shards[0].inject_kill_fired);
  EXPECT_EQ(mock.launches(0), 2u);
  const std::vector<std::string>& events = mock.events();
  EXPECT_EQ(std::count(events.begin(), events.end(), "kill 0"), 0);
}

}  // namespace
}  // namespace paradet::runtime
