// Tests for the tournament branch predictor, BTB and RAS.
#include <gtest/gtest.h>

#include "common/config.h"
#include "sim/branch_predictor.h"

namespace paradet::sim {
namespace {

BranchPredictorConfig small_config() {
  BranchPredictorConfig cfg;
  cfg.local_entries = 64;
  cfg.local_history_bits = 6;
  cfg.global_entries = 256;
  cfg.chooser_entries = 64;
  cfg.btb_entries = 64;
  cfg.ras_entries = 4;
  return cfg;
}

TEST(Tournament, LearnsAlwaysTaken) {
  TournamentPredictor predictor(small_config());
  const Addr pc = 0x1000;
  for (int i = 0; i < 20; ++i) {
    const auto prediction = predictor.predict_branch(pc);
    predictor.update_branch(pc, true, 0x2000, prediction);
  }
  EXPECT_TRUE(predictor.predict_branch(pc).taken);
  // After training, the BTB supplies the target.
  EXPECT_TRUE(predictor.predict_branch(pc).btb_hit);
  EXPECT_EQ(predictor.predict_branch(pc).target, 0x2000u);
}

TEST(Tournament, LearnsAlternatingPatternViaLocalHistory) {
  TournamentPredictor predictor(small_config());
  const Addr pc = 0x1040;
  // Train on strict alternation; local history should capture it.
  bool taken = false;
  for (int i = 0; i < 200; ++i) {
    const auto prediction = predictor.predict_branch(pc);
    predictor.update_branch(pc, taken, 0x3000, prediction);
    taken = !taken;
  }
  // Measure accuracy over the next 40 outcomes.
  int correct = 0;
  for (int i = 0; i < 40; ++i) {
    const auto prediction = predictor.predict_branch(pc);
    if (prediction.taken == taken) ++correct;
    predictor.update_branch(pc, taken, 0x3000, prediction);
    taken = !taken;
  }
  EXPECT_GE(correct, 36);  // near-perfect once warmed up.
}

TEST(Tournament, CountsDirectionMispredicts) {
  TournamentPredictor predictor(small_config());
  const Addr pc = 0x1080;
  for (int i = 0; i < 10; ++i) {
    const auto prediction = predictor.predict_branch(pc);
    predictor.update_branch(pc, true, 0x9000, prediction);
  }
  const auto before = predictor.direction_mispredicts();
  const auto prediction = predictor.predict_branch(pc);
  predictor.update_branch(pc, false, 0x9000, prediction);  // surprise.
  EXPECT_EQ(predictor.direction_mispredicts(), before + 1);
}

TEST(Tournament, JumpBtb) {
  TournamentPredictor predictor(small_config());
  const Addr pc = 0x2000;
  EXPECT_FALSE(predictor.predict_jump(pc).btb_hit);
  predictor.update_jump(pc, 0x4444);
  const auto prediction = predictor.predict_jump(pc);
  EXPECT_TRUE(prediction.btb_hit);
  EXPECT_EQ(prediction.target, 0x4444u);
  EXPECT_TRUE(prediction.taken);
}

TEST(Tournament, RasPredictsReturns) {
  TournamentPredictor predictor(small_config());
  predictor.push_return(0x1004);
  predictor.push_return(0x2004);
  auto prediction = predictor.predict_indirect(0x9000, /*is_return=*/true);
  EXPECT_TRUE(prediction.used_ras);
  EXPECT_EQ(prediction.target, 0x2004u);  // LIFO.
  prediction = predictor.predict_indirect(0x9100, true);
  EXPECT_EQ(prediction.target, 0x1004u);
}

TEST(Tournament, RasWrapsAtCapacity) {
  TournamentPredictor predictor(small_config());  // 4-deep RAS.
  for (Addr a = 1; a <= 6; ++a) predictor.push_return(a * 0x10);
  // The oldest two entries were overwritten; pops return 6,5,4,3.
  for (Addr expect : {0x60u, 0x50u, 0x40u, 0x30u}) {
    const auto prediction = predictor.predict_indirect(0x9000, true);
    EXPECT_EQ(prediction.target, expect);
  }
}

TEST(Tournament, IndirectFallsBackToBtb) {
  TournamentPredictor predictor(small_config());
  const Addr pc = 0x3000;
  EXPECT_FALSE(predictor.predict_indirect(pc, false).btb_hit);
  predictor.update_jump(pc, 0x7000);
  const auto prediction = predictor.predict_indirect(pc, false);
  EXPECT_TRUE(prediction.btb_hit);
  EXPECT_EQ(prediction.target, 0x7000u);
}

TEST(Tournament, BtbConflictsReplace) {
  auto cfg = small_config();
  TournamentPredictor predictor(cfg);
  const Addr pc1 = 0x1000;
  const Addr pc2 = pc1 + cfg.btb_entries * 4;  // same BTB slot.
  predictor.update_jump(pc1, 0xAAAA);
  predictor.update_jump(pc2, 0xBBBB);
  EXPECT_FALSE(predictor.predict_jump(pc1).btb_hit);  // evicted by pc2.
  EXPECT_TRUE(predictor.predict_jump(pc2).btb_hit);
}

TEST(Tournament, LoopBranchWellPredicted) {
  // A loop taken 99 times then not taken once, repeated: global history
  // plus chooser should reach high accuracy.
  TournamentPredictor predictor(small_config());
  const Addr pc = 0x5000;
  int mispredicts = 0;
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 20; ++i) {
      const bool taken = i != 19;
      const auto prediction = predictor.predict_branch(pc);
      if (round > 5 && prediction.taken != taken) ++mispredicts;
      predictor.update_branch(pc, taken, pc - 64, prediction);
    }
  }
  // At most the loop-exit surprise per round after warmup.
  EXPECT_LE(mispredicts, 30);
}

}  // namespace
}  // namespace paradet::sim
