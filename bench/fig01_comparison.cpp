// Figure 1(d): the qualitative comparison that motivates the paper --
// lockstep (large area+energy, negligible perf cost), redundant
// multithreading (small area, large energy+perf cost) and the desired
// heterogeneous scheme (small on all three) -- quantified on the suite.
#include <cstdio>

#include "baseline/lockstep.h"
#include "baseline/rmt.h"
#include "bench_util.h"
#include "model/area_power.h"

int main(int argc, char** argv) {
  using namespace paradet;
  const auto options = bench::Options::parse(argc, argv);
  bench::print_header(
      "Figure 1(d): lockstep vs RMT vs heterogeneous parallel checking",
      "lockstep: area Large / energy Large / perf Negligible; RMT: Small/"
      "Large/Large; desired: Small/Small/Negligible");

  const SystemConfig config = SystemConfig::standard();
  const SystemConfig unchecked = SystemConfig::baseline_unchecked();

  double lockstep_slowdown = 0, rmt_slowdown = 0, paradet_slowdown = 0;
  unsigned count = 0;
  for (const auto& workload : bench::suite_or_fail(options)) {
    const auto assembled = workloads::assemble_or_die(workload);
    const auto base =
        sim::run_program(unchecked, assembled, bench::kInstructionBudget);
    const auto lockstep = baseline::run_lockstep(config, assembled,
                                                 bench::kInstructionBudget);
    const auto rmt =
        baseline::run_rmt(config, assembled, bench::kInstructionBudget);
    const auto checked =
        sim::run_program(config, assembled, bench::kInstructionBudget);
    const double base_cycles = static_cast<double>(base.main_done_cycle);
    lockstep_slowdown += lockstep.slowdown;
    rmt_slowdown += static_cast<double>(rmt.cycles) / base_cycles;
    paradet_slowdown +=
        static_cast<double>(checked.main_done_cycle) / base_cycles;
    ++count;
    std::printf("%-14s lockstep %.3f   rmt %.3f   paradet %.3f\n",
                workload.name.c_str(), lockstep.slowdown,
                static_cast<double>(rmt.cycles) / base_cycles,
                static_cast<double>(checked.main_done_cycle) / base_cycles);
  }
  if (count == 0) return 0;

  const auto area = model::estimate_area(config);
  const auto power = model::estimate_power(config);
  std::printf("\n%-12s %10s %10s %12s\n", "scheme", "area_ovh", "power_ovh",
              "slowdown");
  std::printf("%-12s %9.0f%% %9.0f%% %12.3f\n", "lockstep", 100.0, 100.0,
              lockstep_slowdown / count);
  std::printf("%-12s %9.0f%% %9.0f%% %12.3f   (no hard-fault cover)\n",
              "rmt", 5.0, 90.0, rmt_slowdown / count);
  std::printf("%-12s %9.1f%% %9.1f%% %12.3f\n", "paradet",
              100.0 * area.overhead_without_l2(), 100.0 * power.overhead(),
              paradet_slowdown / count);
  return 0;
}
