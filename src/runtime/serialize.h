// Portable, versioned serialization for campaign results.
//
// A shard's output file, a checkpoint, and the merge tool's output are all
// one shape — CampaignArtifact — written as canonical JSON: fixed key
// order, fixed number formatting (std::to_chars shortest round-trip for
// doubles, so serialize∘deserialize is the identity down to the last bit),
// and a format/version header that readers reject loudly when unknown.
// Canonical bytes are the point: "merging N shard files reproduces the
// single-machine run" is checked with cmp/==, not with tolerances.
//
// Non-finite doubles (an empty Summary's min/max are ±inf) are encoded as
// the JSON strings "inf" / "-inf" / "nan"; everything else is plain JSON.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/stats.h"
#include "runtime/campaign.h"
#include "sim/checked_system.h"

namespace paradet::runtime {

inline constexpr const char* kArtifactFormatName = "paradet-campaign";
inline constexpr std::uint64_t kArtifactFormatVersion = 1;

// --- Canonical JSON writers ------------------------------------------------

std::string to_json(const Summary& summary);
std::string to_json(const Histogram& histogram);
std::string to_json(const Counters& counters);
std::string to_json(const sim::RunResult& result);
std::string to_json(const CampaignAggregate& aggregate);
/// The full versioned document (format + version + shard metadata + a
/// completed-task bitmap + aggregate + per-run records), '\n'-terminated.
std::string to_json(const CampaignArtifact& artifact);

// --- Readers (throw std::runtime_error on malformed input) -----------------

Summary summary_from_json(std::string_view text);
Histogram histogram_from_json(std::string_view text);
Counters counters_from_json(std::string_view text);
sim::RunResult run_result_from_json(std::string_view text);
CampaignAggregate aggregate_from_json(std::string_view text);
/// Also validates the header (unknown format/version is rejected with a
/// clear error), the shard spec, run-record ordering/ownership, and that
/// the completed bitmap matches the run records exactly.
CampaignArtifact artifact_from_json(std::string_view text);

// --- Files -----------------------------------------------------------------

/// Writes atomically: a temp file in the same directory, then rename, so a
/// reader (or a crash mid-checkpoint) never observes a torn artifact.
void write_artifact_file(const std::string& path,
                         const CampaignArtifact& artifact);
CampaignArtifact read_artifact_file(const std::string& path);

// --- Merging ---------------------------------------------------------------

/// Folds shard artifacts back into the single-machine artifact: validates
/// that all inputs describe the same campaign (seed, tasks), that their
/// runs are disjoint and cover every task index, then re-absorbs every run
/// in task-index order. The result (shard 0/1) serializes to bytes
/// identical to an unsharded run's artifact. This is the library path
/// tools/merge_results.cpp drives.
CampaignArtifact merge_artifacts(std::vector<CampaignArtifact> shards);

}  // namespace paradet::runtime
