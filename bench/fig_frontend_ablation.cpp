// Front-end fidelity ablation: normalised checked-mode slowdown when the
// main core's direction predictor is swapped between the pluggable
// sim::FrontEnd models (tournament / gshare / bimodal / always-taken),
// plus one point that keeps the tournament main core but gives the
// checker cores a modelled small front end instead of the paper's fixed
// taken-branch bubble (DetectionConfig::model_frontend).
//
// Not a figure from the paper — the paper fixes the Table I tournament
// front end — but the standard fidelity sweep used to judge how much
// predictor quality the detection results actually depend on: a scheme
// whose slowdown moves sharply under a weaker predictor is riding on
// front-end accuracy, not on checker bandwidth.
//
// Runs as one runtime::SweepCampaign over (variant x workload) cells, so
// it shards across processes (--shard=K/N --out=...) and
// checkpoints/restarts like any other campaign; each workload's
// unchecked baseline keeps the default tournament front end so every
// column is normalised against the same denominator.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "runtime/sweep_campaign.h"

namespace {

struct Variant {
  const char* label;
  paradet::FrontEndKind kind;
  bool checker_model_frontend;
};

int run(int argc, char** argv) {
  using namespace paradet;
  const auto options = bench::Options::parse(argc, argv, /*campaign=*/true);
  const CheckerExec checker = options.checker_exec();
  bench::print_header(
      "Front-end ablation: slowdown vs main-core predictor model",
      "not in paper; tournament column must match Table II/fig07 slowdowns");

  const Variant variants[] = {
      {"tournament", FrontEndKind::kTournament, false},
      {"gshare", FrontEndKind::kGshare, false},
      {"bimodal", FrontEndKind::kBimodal, false},
      {"always-taken", FrontEndKind::kAlwaysTaken, false},
      {"tourn+ckr-fe", FrontEndKind::kTournament, true},
  };

  runtime::SweepCampaign sweep(std::size(variants),
                               bench::suite_or_fail(options),
                               /*seed=*/0xF8A8'1A71);
  SystemConfig baseline = SystemConfig::standard();
  baseline.detection.enabled = false;
  baseline.detection.simulate_checkers = false;
  sweep.enable_baselines(baseline, bench::kInstructionBudget);

  const auto result = sweep.run(
      options.runner(), options.campaign_options(),
      [&](std::size_t point, std::size_t,
          const runtime::AssemblyCache::Image& image, std::uint64_t) {
        SystemConfig config = SystemConfig::standard();
        config.branch_predictor.kind = variants[point].kind;
        config.checker.model_frontend =
            variants[point].checker_model_frontend;
        return sim::run_program(config, image, bench::kInstructionBudget,
                                nullptr, checker);
      });

  runtime::TableSpec spec;
  for (const auto& variant : variants) spec.columns.push_back(variant.label);
  runtime::print_transposed(result, spec, [&](std::size_t p, std::size_t b) {
    return result.slowdown(p, b);
  });
  bench::print_shard_note(result.artifact);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return paradet::bench::cli_main(run, argc, argv);
}
