#include "core/fault_injection.h"

namespace paradet::core {

std::string_view fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kMainArchReg: return "main-arch-reg";
    case FaultSite::kMainLoadValuePostLfu: return "main-load-post-lfu";
    case FaultSite::kMainLoadValuePreLfu: return "main-load-pre-lfu";
    case FaultSite::kMainStoreValue: return "main-store-value";
    case FaultSite::kMainStoreAddr: return "main-store-addr";
    case FaultSite::kCheckpointReg: return "checkpoint-reg";
    case FaultSite::kCheckerArchReg: return "checker-arch-reg";
    case FaultSite::kMainAluStuckAt: return "main-alu-stuck-at";
  }
  return "unknown";
}

const FaultSpec* FaultInjector::at(FaultSite site, UopSeq seq) const {
  for (const auto& spec : specs_) {
    if (spec.site == site && spec.at_seq == seq) return &spec;
  }
  return nullptr;
}

const FaultSpec* FaultInjector::arm(FaultSite site, UopSeq seq) {
  for (auto& spec : specs_) {
    if (spec.site == site && !spec.fired && spec.at_seq <= seq) {
      spec.fired = true;
      return &spec;
    }
  }
  return nullptr;
}

const FaultSpec* FaultInjector::checkpoint_fault(std::uint64_t index) const {
  for (const auto& spec : specs_) {
    if (spec.site == FaultSite::kCheckpointReg &&
        spec.checkpoint_index == index) {
      return &spec;
    }
  }
  return nullptr;
}

const FaultSpec* FaultInjector::alu_stuck_at(UopSeq seq) const {
  for (const auto& spec : specs_) {
    if (spec.site == FaultSite::kMainAluStuckAt && spec.at_seq <= seq) {
      return &spec;
    }
  }
  return nullptr;
}

bool FaultInjector::targets_checker(std::uint64_t ordinal) const {
  for (const auto& spec : specs_) {
    if (spec.site == FaultSite::kCheckerArchReg &&
        spec.segment_ordinal == ordinal) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::tail_safe(UopSeq uop_seq, std::uint64_t checkpoint_index,
                              std::uint64_t segment_ordinal) const {
  for (const auto& spec : specs_) {
    switch (spec.site) {
      case FaultSite::kCheckpointReg:
        if (spec.checkpoint_index < checkpoint_index) return false;
        break;
      case FaultSite::kCheckerArchReg:
        if (spec.segment_ordinal < segment_ordinal) return false;
        break;
      default:
        // Micro-op-keyed sites, including the permanent ALU stuck-at (its
        // corruption starts at at_seq and must not predate the capture).
        if (spec.at_seq < uop_seq) return false;
        break;
    }
  }
  return true;
}

namespace {

class RegFlipHook final : public CheckerFaultHook {
 public:
  RegFlipHook(std::vector<FaultSpec> specs) : specs_(std::move(specs)) {}

  void before_instruction(std::uint64_t local_index,
                          arch::ArchState& state) override {
    for (const auto& spec : specs_) {
      if (spec.checker_local_index == local_index) {
        FaultInjector::flip_register(state, spec.reg, spec.bit);
      }
    }
  }

 private:
  std::vector<FaultSpec> specs_;
};

}  // namespace

std::unique_ptr<CheckerFaultHook> FaultInjector::checker_hook(
    std::uint64_t ordinal) const {
  std::vector<FaultSpec> matching;
  for (const auto& spec : specs_) {
    if (spec.site == FaultSite::kCheckerArchReg &&
        spec.segment_ordinal == ordinal) {
      matching.push_back(spec);
    }
  }
  if (matching.empty()) return nullptr;
  return std::make_unique<RegFlipHook>(std::move(matching));
}

void FaultInjector::flip_register(arch::ArchState& state, unsigned unified_reg,
                                  unsigned bit) {
  const std::uint64_t mask = std::uint64_t{1} << (bit & 63);
  if (unified_reg < kNumIntRegs) {
    if (unified_reg == 0) return;  // x0 is hardwired; a strike is masked.
    state.x[unified_reg] ^= mask;
  } else if (unified_reg < kNumArchRegs) {
    state.f[unified_reg - kNumIntRegs] ^= mask;
  }
}

std::uint64_t FaultInjector::apply_stuck_bit(std::uint64_t value, unsigned bit,
                                             bool stuck_value) {
  const std::uint64_t mask = std::uint64_t{1} << (bit & 63);
  return stuck_value ? (value | mask) : (value & ~mask);
}

}  // namespace paradet::core
