// AssemblyCache: a thread-safe, assemble-once cache of workload images.
//
// Every figure reproduction and campaign driver runs the same handful of
// Table II kernels many times — once per sweep point, per fault trial,
// per baseline/checked pair. Assembling a kernel is pure (the image is a
// function of the source text alone) and the result is immutable once
// built, so there is never a reason to assemble the same source twice in
// one process. Before this cache each driver grew its own ad-hoc
// image-sharing scheme (fig07/fig13/coverage_campaign all had one);
// AssemblyCache centralises the pattern: the first caller to ask for a
// workload assembles it, concurrent callers for the same workload block
// until that one assembly finishes, and everyone shares the same
// immutable image object across the worker pool and across sweep points.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/assembler.h"
#include "workloads/workloads.h"

namespace paradet::runtime {

class AssemblyCache {
 public:
  /// Shared immutable image: safe to read concurrently from every worker
  /// and to outlive the cache lookup that produced it.
  using Image = std::shared_ptr<const isa::Assembled>;

  AssemblyCache() = default;
  AssemblyCache(const AssemblyCache&) = delete;
  AssemblyCache& operator=(const AssemblyCache&) = delete;

  /// The process-wide cache all drivers and SweepCampaign share, so
  /// repeated sweeps (or several sweeps in one driver) reuse each other's
  /// images. Tests construct their own instances.
  static AssemblyCache& instance();

  /// Returns the assembled image for `workload`, assembling at most once
  /// per distinct source text: concurrent lookups of the same workload
  /// serialise on the one assembly and then return pointers to the same
  /// image object. Keyed by (FNV-1a hash, length) of the source text — the
  /// only input assembly depends on — so two Workload objects at the same
  /// scale share an image no matter which driver built them; the full text
  /// is compared on a key match, so a hash collision costs one string
  /// compare, never a wrong image.
  Image get(const workloads::Workload& workload);

  /// Total assemble() invocations so far. A sweep that shares images
  /// correctly leaves this at one per distinct workload, no matter how
  /// many config points or worker threads touched it.
  std::uint64_t assemblies() const {
    return assemblies_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::once_flag once;
    std::string source;  ///< collision check against the key's hash.
    Image image;
  };

  /// Precomputed content key: hashing the source once at lookup replaces
  /// the per-lookup std::hash re-hash plus full string equality walk of a
  /// string-keyed map.
  struct Key {
    std::uint64_t hash = 0;
    std::size_t length = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      return static_cast<std::size_t>(key.hash ^ key.length);
    }
  };

  std::mutex mutex_;  ///< guards the map only; assembly runs outside it.
  /// (hash, length) -> entries with that key. The vector holds one entry
  /// in every realistic case; a genuine FNV collision chains.
  std::unordered_map<Key, std::vector<std::shared_ptr<Entry>>, KeyHash>
      entries_;
  std::atomic<std::uint64_t> assemblies_{0};
};

}  // namespace paradet::runtime
