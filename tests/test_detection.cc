// Tests for the detection controller: strong-induction first-error
// ordering (§IV) and delay statistics, plus fault-injector plumbing.
#include <gtest/gtest.h>

#include "core/detection.h"
#include "core/fault_injection.h"

namespace paradet::core {
namespace {

CheckOutcome failed_outcome(DetectionKind kind) {
  CheckOutcome outcome;
  outcome.passed = false;
  outcome.event.kind = kind;
  return outcome;
}

TEST(DetectionController, NoErrorsWhenAllPass) {
  DetectionController controller(3200);
  for (int i = 0; i < 10; ++i) controller.report(CheckOutcome{}, i);
  EXPECT_FALSE(controller.error_detected());
  EXPECT_EQ(controller.failures(), 0u);
  EXPECT_EQ(controller.segments_reported(), 10u);
}

TEST(DetectionController, KeepsEarliestOrdinalAsFirstError) {
  DetectionController controller(3200);
  // Checks complete out of order: segment 7 fails first, then segment 3.
  controller.report(failed_outcome(DetectionKind::kStoreValueMismatch), 7);
  EXPECT_EQ(controller.first_error()->segment_ordinal, 7u);
  controller.report(failed_outcome(DetectionKind::kRegisterMismatch), 3);
  // Strong induction: the error in the *earlier* segment supersedes.
  EXPECT_EQ(controller.first_error()->segment_ordinal, 3u);
  EXPECT_EQ(controller.first_error()->kind,
            DetectionKind::kRegisterMismatch);
  // A later failure does not displace it.
  controller.report(failed_outcome(DetectionKind::kPcMismatch), 5);
  EXPECT_EQ(controller.first_error()->segment_ordinal, 3u);
  EXPECT_EQ(controller.failures(), 3u);
}

TEST(DetectionController, DelayHistogramInNanoseconds) {
  DetectionController controller(3200, 50.0, 100);
  // 3200 cycles at 3.2 GHz = 1000 ns.
  controller.record_entry_checked(0, 3200);
  controller.record_entry_checked(3200, 4800);  // 500 ns.
  EXPECT_EQ(controller.delay_histogram_ns().summary().count(), 2u);
  EXPECT_DOUBLE_EQ(controller.delay_histogram_ns().summary().max(), 1000.0);
  EXPECT_DOUBLE_EQ(controller.delay_histogram_ns().summary().mean(), 750.0);
}

TEST(DetectionEvent, DescribeIsHumanReadable) {
  DetectionEvent event;
  event.kind = DetectionKind::kStoreValueMismatch;
  event.segment_ordinal = 12;
  event.expected = 0xAB;
  event.actual = 0xAD;
  const std::string text = event.describe();
  EXPECT_NE(text.find("store-value-mismatch"), std::string::npos);
  EXPECT_NE(text.find("#12"), std::string::npos);
  EXPECT_NE(text.find("0xab"), std::string::npos);
}

TEST(DetectionKindNames, AllNamed) {
  for (int k = 0; k <= static_cast<int>(DetectionKind::kCheckerTimeout);
       ++k) {
    EXPECT_NE(detection_kind_name(static_cast<DetectionKind>(k)), "unknown");
  }
}

TEST(FaultInjector, LookupBySiteAndSeq) {
  FaultInjector injector;
  FaultSpec spec;
  spec.site = FaultSite::kMainStoreValue;
  spec.at_seq = 100;
  injector.add(spec);
  EXPECT_NE(injector.at(FaultSite::kMainStoreValue, 100), nullptr);
  EXPECT_EQ(injector.at(FaultSite::kMainStoreValue, 101), nullptr);
  EXPECT_EQ(injector.at(FaultSite::kMainStoreAddr, 100), nullptr);
}

TEST(FaultInjector, AluStuckAtIsPermanentFromTrigger) {
  FaultInjector injector;
  FaultSpec spec;
  spec.site = FaultSite::kMainAluStuckAt;
  spec.at_seq = 50;
  injector.add(spec);
  EXPECT_EQ(injector.alu_stuck_at(49), nullptr);
  EXPECT_NE(injector.alu_stuck_at(50), nullptr);
  EXPECT_NE(injector.alu_stuck_at(5000), nullptr);
}

TEST(FaultInjector, FlipRegisterUnifiedSpace) {
  arch::ArchState state;
  FaultInjector::flip_register(state, 5, 3);
  EXPECT_EQ(state.x[5], 8u);
  FaultInjector::flip_register(state, kNumIntRegs + 2, 0);
  EXPECT_EQ(state.f[2], 1u);
  // x0 strikes are architecturally masked.
  FaultInjector::flip_register(state, 0, 9);
  EXPECT_EQ(state.get_x(0), 0u);
}

TEST(FaultInjector, StuckBitHelper) {
  EXPECT_EQ(FaultInjector::apply_stuck_bit(0b000, 1, true), 0b010u);
  EXPECT_EQ(FaultInjector::apply_stuck_bit(0b111, 1, false), 0b101u);
}

TEST(FaultInjector, CheckerHookOnlyForTargetSegment) {
  FaultInjector injector;
  FaultSpec spec;
  spec.site = FaultSite::kCheckerArchReg;
  spec.segment_ordinal = 4;
  injector.add(spec);
  EXPECT_TRUE(injector.targets_checker(4));
  EXPECT_FALSE(injector.targets_checker(5));
  EXPECT_NE(injector.checker_hook(4), nullptr);
  EXPECT_EQ(injector.checker_hook(5), nullptr);
}

TEST(FaultInjector, SiteNamesComplete) {
  for (int s = 0; s <= static_cast<int>(FaultSite::kMainAluStuckAt); ++s) {
    EXPECT_NE(fault_site_name(static_cast<FaultSite>(s)), "unknown");
  }
}

}  // namespace
}  // namespace paradet::core
