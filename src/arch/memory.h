// Sparse byte-addressable 64-bit memory, allocated in 4 KiB pages on first
// touch. Unmapped memory reads as zero, matching a zero-initialised
// simulated DRAM. This is the *functional* memory; timing is modelled
// separately in src/mem.
//
// Two fast paths keep the per-access cost off the page hash map:
//   * reserve_flat() installs a contiguous zero-filled backing for a
//     program's data window (load_program does this for every assembled
//     image), so the common in-window access is a bounds check + memcpy;
//   * a one-entry last-page translation cache short-circuits repeated
//     accesses to the same 4 KiB page outside the flat window.
// Semantics are byte-identical to the plain page map (zero-fill on cold
// pages, page-crossing splits); only the lookup cost changes.
//
// The translation cache makes read() logically-const-but-stateful: a
// SparseMemory must not be read concurrently from multiple threads
// (campaign workers each own their memory, so this costs nothing today).
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace paradet::arch {

class SparseMemory {
 public:
  static constexpr unsigned kPageBits = 12;
  static constexpr std::size_t kPageBytes = std::size_t{1} << kPageBits;

  SparseMemory() = default;
  SparseMemory(const SparseMemory&) = delete;
  SparseMemory& operator=(const SparseMemory&) = delete;
  SparseMemory(SparseMemory&&) = default;
  SparseMemory& operator=(SparseMemory&&) = default;

  /// Installs a contiguous zero-filled flat backing over [base, base+bytes)
  /// (rounded out to page boundaries). Existing page contents in the range
  /// are absorbed into the flat store; accesses inside the window then skip
  /// the page map entirely. Call before (or after) populating — semantics
  /// are unchanged either way.
  void reserve_flat(Addr base, std::size_t bytes);

  /// Reads `size` bytes (1, 2, 4 or 8) little-endian, zero-extended.
  std::uint64_t read(Addr addr, unsigned size) const {
    if (in_flat(addr, size)) {
      std::uint64_t value = 0;
      std::memcpy(&value, flat_.data() + (addr - flat_base_), size);
      return value;
    }
    return read_paged(addr, size);
  }

  /// read(), but bypassing the mutable translation cache: safe to call from
  /// any number of threads concurrently *as long as nothing writes* — the
  /// contract for the frozen instruction-memory snapshots the concurrent
  /// checker replay fetches from. Identical semantics, slightly slower
  /// out-of-flat lookups (a hash probe per access instead of per page run).
  std::uint64_t read_shared(Addr addr, unsigned size) const {
    if (in_flat(addr, size)) {
      std::uint64_t value = 0;
      std::memcpy(&value, flat_.data() + (addr - flat_base_), size);
      return value;
    }
    return read_paged_shared(addr, size);
  }

  /// Deep copy. Copying is deliberately explicit (the copy constructor is
  /// deleted): a multi-MiB memory duplicated by accident is a perf bug,
  /// but the checker pipeline legitimately needs a pristine fetch snapshot
  /// per run.
  SparseMemory clone() const {
    SparseMemory copy;
    copy.flat_base_ = flat_base_;
    copy.flat_ = flat_;
    copy.pages_ = pages_;
    return copy;
  }

  /// Writes the low `size` bytes of `value` little-endian.
  void write(Addr addr, std::uint64_t value, unsigned size) {
    if (in_flat(addr, size)) {
      std::memcpy(flat_.data() + (addr - flat_base_), &value, size);
      return;
    }
    write_paged(addr, value, size);
  }

  void write_block(Addr addr, std::span<const std::uint8_t> bytes);
  void read_block(Addr addr, std::span<std::uint8_t> out) const;

  /// Pages in the sparse map (the flat window is not counted: it is one
  /// contiguous allocation, not demand-allocated pages).
  std::size_t pages_allocated() const { return pages_.size(); }

  /// Size in bytes of the flat window (0 when none is installed).
  std::size_t flat_bytes() const { return flat_.size(); }

 private:
  using Page = std::vector<std::uint8_t>;

  bool in_flat(Addr addr, unsigned size) const {
    const Addr offset = addr - flat_base_;  // wraps huge for addr < base.
    return offset < flat_.size() && offset + size <= flat_.size();
  }

  std::uint64_t read_paged(Addr addr, unsigned size) const;
  std::uint64_t read_paged_shared(Addr addr, unsigned size) const;
  void write_paged(Addr addr, std::uint64_t value, unsigned size);

  /// Backing bytes of the page containing `addr` (flat window included),
  /// or nullptr when untouched. Cached per page: repeated same-page
  /// lookups skip the hash probe.
  const std::uint8_t* page_ptr(Addr addr) const;
  std::uint8_t* page_ptr_mut(Addr addr);

  Addr flat_base_ = 0;
  std::vector<std::uint8_t> flat_;
  std::unordered_map<std::uint64_t, Page> pages_;

  static constexpr std::uint64_t kNoPage = ~std::uint64_t{0};
  mutable std::uint64_t cached_page_ = kNoPage;
  mutable const std::uint8_t* cached_bytes_ = nullptr;
  std::uint64_t cached_page_mut_ = kNoPage;
  std::uint8_t* cached_bytes_mut_ = nullptr;
};

}  // namespace paradet::arch
