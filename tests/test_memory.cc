// Unit tests for the sparse functional memory.
#include <gtest/gtest.h>

#include <array>

#include "arch/memory.h"

namespace paradet::arch {
namespace {

TEST(SparseMemory, UnmappedReadsZero) {
  SparseMemory memory;
  EXPECT_EQ(memory.read(0x123456789ULL, 8), 0u);
  EXPECT_EQ(memory.pages_allocated(), 0u);
}

TEST(SparseMemory, ReadBackWhatWasWritten) {
  SparseMemory memory;
  memory.write(0x1000, 0xDEADBEEFCAFEF00DULL, 8);
  EXPECT_EQ(memory.read(0x1000, 8), 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(memory.read(0x1000, 4), 0xCAFEF00Du);
  EXPECT_EQ(memory.read(0x1004, 4), 0xDEADBEEFu);
  EXPECT_EQ(memory.read(0x1000, 1), 0x0Du);
}

TEST(SparseMemory, PartialWritesPreserveNeighbours) {
  SparseMemory memory;
  memory.write(0x2000, 0xFFFFFFFFFFFFFFFFULL, 8);
  memory.write(0x2002, 0xAB, 1);
  EXPECT_EQ(memory.read(0x2000, 8), 0xFFFFFFFFFFABFFFFULL);
}

TEST(SparseMemory, PageCrossingAccess) {
  SparseMemory memory;
  const Addr boundary = SparseMemory::kPageBytes;  // 0x1000
  memory.write(boundary - 4, 0x1122334455667788ULL, 8);
  EXPECT_EQ(memory.read(boundary - 4, 8), 0x1122334455667788ULL);
  EXPECT_EQ(memory.read(boundary - 4, 4), 0x55667788u);
  EXPECT_EQ(memory.read(boundary, 4), 0x11223344u);
  EXPECT_EQ(memory.pages_allocated(), 2u);
}

TEST(SparseMemory, BlockTransfer) {
  SparseMemory memory;
  std::array<std::uint8_t, 10000> out_buffer{};
  std::array<std::uint8_t, 10000> in_buffer{};
  for (std::size_t i = 0; i < in_buffer.size(); ++i) {
    in_buffer[i] = static_cast<std::uint8_t>(i * 7);
  }
  memory.write_block(0x3FF8, in_buffer);  // crosses several pages.
  memory.read_block(0x3FF8, out_buffer);
  EXPECT_EQ(in_buffer, out_buffer);
}

TEST(SparseMemory, ReadBlockFromUnmappedIsZero) {
  SparseMemory memory;
  std::array<std::uint8_t, 64> buffer;
  buffer.fill(0xEE);
  memory.read_block(0x777000, buffer);
  for (const auto byte : buffer) EXPECT_EQ(byte, 0);
}

TEST(SparseMemory, SparseFootprint) {
  SparseMemory memory;
  memory.write(0x0, 1, 1);
  memory.write(0x10000000, 1, 1);
  memory.write(0x7FFFFFFFFFF8ULL, 1, 8);
  EXPECT_EQ(memory.pages_allocated(), 3u);
}

// ---- Flat-backing fast path -----------------------------------------------

TEST(SparseMemoryFlat, ColdFlatReadsZeroAndAllocatesNoPages) {
  SparseMemory memory;
  memory.reserve_flat(0, 0x10000);
  EXPECT_EQ(memory.read(0x8000, 8), 0u);
  EXPECT_EQ(memory.pages_allocated(), 0u);
  memory.write(0x8000, 0x1122334455667788ULL, 8);
  EXPECT_EQ(memory.read(0x8000, 8), 0x1122334455667788ULL);
  // Writes inside the window land in the flat store, not in pages.
  EXPECT_EQ(memory.pages_allocated(), 0u);
}

TEST(SparseMemoryFlat, AbsorbsExistingPages) {
  SparseMemory memory;
  memory.write(0x1000, 0xDEADBEEFCAFEF00DULL, 8);
  memory.write(0x20000, 0xAA, 1);  // outside the future window.
  ASSERT_EQ(memory.pages_allocated(), 2u);
  memory.reserve_flat(0, 0x10000);
  EXPECT_EQ(memory.read(0x1000, 8), 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(memory.read(0x20000, 1), 0xAAu);
  // The in-window page was folded into the flat store.
  EXPECT_EQ(memory.pages_allocated(), 1u);
}

TEST(SparseMemoryFlat, SegmentBoundaryAccessesSplitCorrectly) {
  SparseMemory memory;
  memory.reserve_flat(0, 0x2000);  // window = pages 0 and 1.
  const Addr boundary = 0x2000;    // first address past the window.
  // An 8-byte access straddling the window's end: low half flat, high half
  // page-backed.
  memory.write(boundary - 4, 0x1122334455667788ULL, 8);
  EXPECT_EQ(memory.read(boundary - 4, 8), 0x1122334455667788ULL);
  EXPECT_EQ(memory.read(boundary - 4, 4), 0x55667788u);
  EXPECT_EQ(memory.read(boundary, 4), 0x11223344u);
  EXPECT_EQ(memory.pages_allocated(), 1u);
  // Neighbouring bytes on both sides survive a partial overwrite.
  memory.write(boundary - 1, 0xEE, 1);
  EXPECT_EQ(memory.read(boundary - 4, 8), 0x11223344EE667788ULL);
}

TEST(SparseMemoryFlat, PageCrossingInsideFlatWindow) {
  SparseMemory memory;
  memory.reserve_flat(0, 0x4000);
  memory.write(0x0FFC, 0xA1B2C3D4E5F60718ULL, 8);  // crosses page 0 -> 1.
  EXPECT_EQ(memory.read(0x0FFC, 8), 0xA1B2C3D4E5F60718ULL);
  EXPECT_EQ(memory.read(0x1000, 4), 0xA1B2C3D4u);
  EXPECT_EQ(memory.pages_allocated(), 0u);
}

TEST(SparseMemoryFlat, BlockTransfersSpanTheWindowEdge) {
  SparseMemory memory;
  memory.reserve_flat(0, 0x2000);
  std::array<std::uint8_t, 4096> in_buffer;
  std::array<std::uint8_t, 4096> out_buffer{};
  for (std::size_t i = 0; i < in_buffer.size(); ++i) {
    in_buffer[i] = static_cast<std::uint8_t>(i * 13 + 1);
  }
  memory.write_block(0x1800, in_buffer);  // half inside, half outside.
  memory.read_block(0x1800, out_buffer);
  EXPECT_EQ(in_buffer, out_buffer);
  EXPECT_EQ(memory.read(0x17FF, 1), 0u);  // window below the block: cold.
}

TEST(SparseMemoryFlat, WindowIsRoundedOutToPages) {
  SparseMemory memory;
  memory.reserve_flat(0x1100, 0x100);  // interior of page 1.
  EXPECT_EQ(memory.flat_bytes(), SparseMemory::kPageBytes);
  memory.write(0x1000, 0x77, 1);  // page-aligned start of the window.
  EXPECT_EQ(memory.read(0x1000, 1), 0x77u);
  EXPECT_EQ(memory.pages_allocated(), 0u);
}

// ---- One-entry page-translation cache -------------------------------------

TEST(SparseMemoryPageCache, AlternatingPagesStayCoherent) {
  SparseMemory memory;
  for (int round = 0; round < 4; ++round) {
    memory.write(0x1000 + round, static_cast<std::uint64_t>(round), 1);
    memory.write(0x9000 + round, static_cast<std::uint64_t>(round + 40), 1);
  }
  for (int round = 0; round < 4; ++round) {
    EXPECT_EQ(memory.read(0x1000 + round, 1),
              static_cast<std::uint64_t>(round));
    EXPECT_EQ(memory.read(0x9000 + round, 1),
              static_cast<std::uint64_t>(round + 40));
  }
}

TEST(SparseMemoryPageCache, ColdReadMissIsNotCachedAcrossTheCreatingWrite) {
  SparseMemory memory;
  // Read a cold page (miss: zero), create it with a write, read again: the
  // second read must see the write, not a stale cached miss.
  EXPECT_EQ(memory.read(0x5000, 8), 0u);
  memory.write(0x5000, 0x55AA, 2);
  EXPECT_EQ(memory.read(0x5000, 2), 0x55AAu);
}

TEST(SparseMemoryPageCache, PageCrossingReadAfterOneSidedWrite) {
  SparseMemory memory;
  memory.write(0x1FFF, 0x7B, 1);
  EXPECT_EQ(memory.read(0x1FFC, 8), 0x7B000000ULL);
  memory.write(0x2000, 0x1C, 1);
  EXPECT_EQ(memory.read(0x1FFC, 8), 0x1C7B000000ULL);
}

// ---- Copy-on-write forking -------------------------------------------------

TEST(SparseMemoryCow, WriteIsolationAfterFork) {
  SparseMemory parent;
  parent.reserve_flat(0, 0x4000);
  parent.write(0x1008, 0x1111111111111111ULL, 8);  // in window.
  parent.write(0x90000, 0x2222222222222222ULL, 8);  // sparse page.

  SparseMemory child = parent.fork();
  EXPECT_TRUE(parent.is_cow());
  EXPECT_TRUE(child.is_cow());
  EXPECT_EQ(child.read(0x1008, 8), 0x1111111111111111ULL);
  EXPECT_EQ(child.read(0x90000, 8), 0x2222222222222222ULL);

  // Writes on either side stay invisible to the other, window and sparse.
  child.write(0x1008, 0xAAAAAAAAAAAAAAAAULL, 8);
  child.write(0x90000, 0xBBBBBBBBBBBBBBBBULL, 8);
  parent.write(0x2000, 0xCCCCCCCCCCCCCCCCULL, 8);
  EXPECT_EQ(parent.read(0x1008, 8), 0x1111111111111111ULL);
  EXPECT_EQ(parent.read(0x90000, 8), 0x2222222222222222ULL);
  EXPECT_EQ(child.read(0x1008, 8), 0xAAAAAAAAAAAAAAAAULL);
  EXPECT_EQ(child.read(0x90000, 8), 0xBBBBBBBBBBBBBBBBULL);
  EXPECT_EQ(child.read(0x2000, 8), 0u);
  // Only the written pages were materialised.
  EXPECT_EQ(child.cow_dirty_pages(), 1u);
  EXPECT_EQ(parent.cow_dirty_pages(), 1u);
}

TEST(SparseMemoryCow, ForkOfForkChains) {
  SparseMemory a;
  a.reserve_flat(0, 0x2000);
  a.write(0x100, 10, 1);
  SparseMemory b = a.fork();
  b.write(0x100, 20, 1);
  SparseMemory c = b.fork();
  c.write(0x100, 30, 1);
  SparseMemory d = c.fork();  // untouched leaf.
  EXPECT_EQ(a.read(0x100, 1), 10u);
  EXPECT_EQ(b.read(0x100, 1), 20u);
  EXPECT_EQ(c.read(0x100, 1), 30u);
  EXPECT_EQ(d.read(0x100, 1), 30u);
  // Deep generations still isolate both directions.
  d.write(0x100, 40, 1);
  c.write(0x100, 33, 1);
  EXPECT_EQ(b.read(0x100, 1), 20u);
  EXPECT_EQ(c.read(0x100, 1), 33u);
  EXPECT_EQ(d.read(0x100, 1), 40u);
}

TEST(SparseMemoryCow, FrozenWindowBoundaryAccessesSplitCorrectly) {
  // The flat/sparse boundary semantics survive freezing: same scenario as
  // SparseMemoryFlat.SegmentBoundaryAccessesSplitCorrectly, via a fork.
  SparseMemory memory;
  memory.reserve_flat(0, 0x2000);  // window = pages 0 and 1.
  SparseMemory forked = memory.fork();
  const Addr boundary = 0x2000;  // first address past the window.
  forked.write(boundary - 4, 0x1122334455667788ULL, 8);
  EXPECT_EQ(forked.read(boundary - 4, 8), 0x1122334455667788ULL);
  EXPECT_EQ(forked.read(boundary - 4, 4), 0x55667788u);
  EXPECT_EQ(forked.read(boundary, 4), 0x11223344u);
  EXPECT_EQ(forked.pages_allocated(), 1u);
  forked.write(boundary - 1, 0xEE, 1);
  EXPECT_EQ(forked.read(boundary - 4, 8), 0x11223344EE667788ULL);
  // The parent saw none of it.
  EXPECT_EQ(memory.read(boundary - 4, 8), 0u);
  EXPECT_EQ(memory.pages_allocated(), 0u);
}

TEST(SparseMemoryCow, PageCrossingInsideFrozenWindow) {
  SparseMemory memory;
  memory.reserve_flat(0, 0x4000);
  memory.freeze();
  memory.write(0x0FFC, 0xA1B2C3D4E5F60718ULL, 8);  // crosses page 0 -> 1.
  EXPECT_EQ(memory.read(0x0FFC, 8), 0xA1B2C3D4E5F60718ULL);
  EXPECT_EQ(memory.read(0x1000, 4), 0xA1B2C3D4u);
  EXPECT_EQ(memory.cow_dirty_pages(), 2u);
  EXPECT_EQ(memory.pages_allocated(), 0u);
}

TEST(SparseMemoryCow, StaleCacheWindowWriteAfterForkDoesNotAliasTheChild) {
  // Regression for the translation-cache audit: prime the mutable cache
  // with writes, fork, then write the same pages through the parent. A
  // stale cached pointer would scribble on the child's shared page.
  SparseMemory parent;
  parent.reserve_flat(0, 0x2000);
  SparseMemory first = parent.fork();
  parent.write(0x1000, 0x01, 1);   // materialises + caches page 1.
  parent.write(0x30000, 0x02, 1);  // sparse page, cached too.
  SparseMemory child = parent.fork();
  parent.write(0x1000, 0xFF, 1);  // must CoW-copy, not hit the stale cache.
  parent.write(0x30000, 0xEE, 1);
  EXPECT_EQ(child.read(0x1000, 1), 0x01u);
  EXPECT_EQ(child.read(0x30000, 1), 0x02u);
  EXPECT_EQ(parent.read(0x1000, 1), 0xFFu);
  EXPECT_EQ(parent.read(0x30000, 1), 0xEEu);
  EXPECT_EQ(first.read(0x1000, 1), 0u);
}

TEST(SparseMemoryCow, StaleReadCacheInvalidatedByCopyOnWrite) {
  SparseMemory parent;
  parent.reserve_flat(0, 0x2000);
  parent.write(0x1000, 0x10, 1);
  SparseMemory child = parent.fork();
  EXPECT_EQ(child.read(0x1000, 1), 0x10u);  // primes child's read cache.
  child.write(0x1000, 0x77, 1);             // CoW-copies the page.
  EXPECT_EQ(child.read(0x1000, 1), 0x77u);  // not the stale shared bytes.
  EXPECT_EQ(parent.read(0x1000, 1), 0x10u);
}

TEST(SparseMemoryCow, ConstForkRequiresFreeze) {
  const SparseMemory memory;
  EXPECT_THROW(memory.fork(), std::logic_error);
  SparseMemory frozen;
  frozen.write(0x40, 0x5A, 1);
  frozen.freeze();
  const SparseMemory& view = frozen;
  SparseMemory child = view.fork();
  EXPECT_EQ(child.read(0x40, 1), 0x5Au);
}

TEST(SparseMemoryCow, FrozenMemoryRejectsReserveFlat) {
  SparseMemory memory;
  memory.freeze();
  EXPECT_THROW(memory.reserve_flat(0, 0x1000), std::logic_error);
}

TEST(SparseMemoryCow, CloneOfFrozenMaterialisesAPrivateCopy) {
  SparseMemory original;
  original.reserve_flat(0, 0x2000);
  original.write(0x1010, 0xABCD, 2);
  original.write(0x70000, 0x1234, 2);
  original.freeze();
  original.write(0x1010, 0xBEEF, 2);  // overlay page over the backing.
  SparseMemory copy = original.clone();
  EXPECT_FALSE(copy.is_cow());
  EXPECT_EQ(copy.read(0x1010, 2), 0xBEEFu);
  EXPECT_EQ(copy.read(0x70000, 2), 0x1234u);
  copy.write(0x1010, 0x5555, 2);
  EXPECT_EQ(original.read(0x1010, 2), 0xBEEFu);
}

TEST(SparseMemoryCow, ReadSharedSeesOverlayAndBacking) {
  SparseMemory memory;
  memory.reserve_flat(0, 0x2000);
  memory.write(0x0008, 0x1111, 2);
  memory.write(0x1008, 0x2222, 2);
  memory.freeze();
  memory.write(0x1008, 0x3333, 2);  // page 1 becomes overlay; page 0 backing.
  EXPECT_EQ(memory.read_shared(0x0008, 2), 0x1111u);
  EXPECT_EQ(memory.read_shared(0x1008, 2), 0x3333u);
  // Page-crossing read_shared across backing/overlay pages.
  memory.write(0x0FFC, 0xA1B2C3D4E5F60718ULL, 8);
  EXPECT_EQ(memory.read_shared(0x0FFC, 8), 0xA1B2C3D4E5F60718ULL);
}

// ---- Content digest --------------------------------------------------------

TEST(SparseMemoryDigest, RepresentationIndependent) {
  // The same bytes through three representations — private flat window,
  // plain sparse pages, and a forked CoW child — digest identically.
  SparseMemory flat;
  flat.reserve_flat(0, 0x4000);
  flat.write(0x1008, 0xDEADBEEF, 4);
  flat.write(0x90000, 0x55, 1);

  SparseMemory sparse;
  sparse.write(0x1008, 0xDEADBEEF, 4);
  sparse.write(0x90000, 0x55, 1);

  SparseMemory cow_parent;
  cow_parent.reserve_flat(0, 0x4000);
  cow_parent.write(0x90000, 0x55, 1);
  SparseMemory cow_child = cow_parent.fork();
  cow_child.write(0x1008, 0xDEADBEEF, 4);

  EXPECT_NE(flat.digest(), 0u);
  EXPECT_EQ(flat.digest(), sparse.digest());
  EXPECT_EQ(flat.digest(), cow_child.digest());
  EXPECT_NE(flat.digest(), cow_parent.digest());  // parent lacks 0x1008.
}

TEST(SparseMemoryDigest, ZeroPagesDoNotContribute) {
  SparseMemory empty;
  EXPECT_EQ(empty.digest(), 0u);
  SparseMemory windowed;
  windowed.reserve_flat(0, 0x100000);  // untouched window digests as empty.
  EXPECT_EQ(windowed.digest(), 0u);
  windowed.write(0x2000, 1, 1);
  const std::uint64_t one = windowed.digest();
  EXPECT_NE(one, 0u);
  windowed.write(0x2000, 0, 1);  // restore to all-zero: digest reverts.
  EXPECT_EQ(windowed.digest(), 0u);
  EXPECT_EQ(one, [] {
    SparseMemory sparse;
    sparse.write(0x2000, 1, 1);
    return sparse.digest();
  }());
}

TEST(SparseMemoryDigest, SensitiveToValueAndAddress) {
  SparseMemory a;
  a.write(0x1000, 0x42, 1);
  SparseMemory b;
  b.write(0x1000, 0x43, 1);
  SparseMemory c;
  c.write(0x2000, 0x42, 1);
  EXPECT_NE(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
  EXPECT_NE(b.digest(), c.digest());
}

}  // namespace
}  // namespace paradet::arch
