#include "runtime/parallel_runner.h"

namespace paradet::runtime {

unsigned resolve_jobs(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace paradet::runtime
