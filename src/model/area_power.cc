#include "model/area_power.h"

namespace paradet::model {
namespace {

constexpr double kMiB = 1024.0 * 1024.0;

}  // namespace

std::uint64_t detection_sram_bytes(const SystemConfig& config) {
  const std::uint64_t log = config.log.total_bytes;
  // Load forwarding unit: one slot per ROB entry (addr 6B + data 8B +
  // size/valid metadata ~4B).
  const std::uint64_t lfu = config.main_core.rob_entries * 18;
  const std::uint64_t l0s =
      config.checker.num_cores * config.checker.l0_icache_bytes;
  const std::uint64_t l1 = config.checker.l1_icache_bytes;
  // Checkpoint buffers: consecutive segments share their boundary
  // checkpoint (segment k's end is segment k+1's start), so N segments
  // need N+1 buffers of 64 registers + pc.
  const std::uint64_t checkpoints =
      (config.log.segments + 1) * (kNumArchRegs * 8 + 8);
  return log + lfu + l0s + l1 + checkpoints;
}

AreaBreakdown estimate_area(const SystemConfig& config,
                            const TechnologyConstants& tech) {
  AreaBreakdown area;
  area.main_core_mm2 = tech.a57_mm2_at_20nm;
  area.l2_mm2 = (static_cast<double>(config.l2.size_bytes) / kMiB) *
                tech.l2_mm2_per_mib;
  area.checker_cores_mm2 = config.checker.num_cores *
                           tech.rocket_mm2_at_40nm *
                           tech.rocket_area_scale_to_20nm;
  area.sram_bytes = detection_sram_bytes(config);
  area.sram_mm2 =
      (static_cast<double>(area.sram_bytes) / kMiB) * tech.sram_mm2_per_mib;
  return area;
}

PowerBreakdown estimate_power(const SystemConfig& config,
                              const TechnologyConstants& tech) {
  PowerBreakdown power;
  power.main_core_mw = static_cast<double>(config.main_core.freq_mhz) *
                       tech.a57_uw_per_mhz / 1000.0;
  power.checker_cores_mw = config.checker.num_cores *
                           static_cast<double>(config.checker.freq_mhz) *
                           tech.rocket_uw_per_mhz / 1000.0;
  return power;
}

}  // namespace paradet::model
