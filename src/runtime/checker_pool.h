// Bounded ticket pipeline for concurrent checker replay.
//
// The segment pipeline (sim/segment_pipeline) splits each sealed segment's
// processing into a thread-safe *work* half (functional replay, pure over
// an immutable snapshot) and an order-dependent *absorb* half (timing walk
// over shared icache state, detection bookkeeping). CheckerPool runs the
// two halves on a worker pool plus one absorber thread:
//
//   producer ──publish(t)──▶ [workers: claim tickets via atomic CAS,
//                             run work(t, worker) in any order]
//                                   │ per-ticket done word
//                                   ▼
//                            [absorber: absorb(0), absorb(1), … strictly
//                             in ticket order]
//
// Tickets are dense 0..n-1 ordinals. Capacity bounds the number of
// published-but-not-absorbed tickets, giving backpressure: wait_slot()
// blocks the producer until slot `ticket % capacity` is free again.
//
// The handoff protocol is deliberately lock-light: every pipeline counter
// (published/claimed/absorbed) is an atomic, each slot's completion word
// lives on its own cache line, and threads waiting for progress spin a
// bounded number of iterations before parking on a condition variable.
// Wakers only take the condvar mutex when a waiter has actually parked
// (a Dekker-style parked counter with seq_cst stores on the watched
// state), so the steady-state cost of publishing or absorbing a ticket is
// a handful of uncontended atomic operations — not a mutex/notify round
// trip per segment, which dominated the handoff at fine replay
// granularities. Fine granularity is further amortised one level up:
// sim::SegmentPipeline coalesces several sealed segments into one ticket
// (see CheckerExec::batch).
//
// Exceptions from work/absorb are captured once and rethrown from the
// producer-side calls (publish/wait_slot/drain); the pool then refuses
// further tickets.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace paradet::runtime {

class CheckerPool {
 public:
  /// work(ticket, worker): thread-safe half, runs on any of `threads`
  /// workers; `worker` in [0, threads) selects per-thread scratch state.
  /// absorb(ticket): order-dependent half, called from the absorber thread
  /// strictly in ticket order.
  using WorkFn = std::function<void(std::uint64_t ticket, unsigned worker)>;
  using AbsorbFn = std::function<void(std::uint64_t ticket)>;

  /// Spawns `threads` workers (>= 1) plus one absorber. `capacity` bounds
  /// in-flight tickets (>= 1).
  CheckerPool(unsigned threads, std::size_t capacity, WorkFn work,
              AbsorbFn absorb);
  ~CheckerPool();

  CheckerPool(const CheckerPool&) = delete;
  CheckerPool& operator=(const CheckerPool&) = delete;

  /// Blocks until slot `ticket % capacity` is free (i.e. ticket - capacity
  /// has been absorbed). Call before writing the ticket's input into the
  /// shared slot. Rethrows any captured pipeline failure.
  void wait_slot(std::uint64_t ticket);

  /// Makes `ticket` visible to workers. Tickets must be published densely
  /// in order: 0, 1, 2, … Rethrows any captured pipeline failure.
  void publish(std::uint64_t ticket);

  /// Blocks until absorb(ticket) has returned. Rethrows failures.
  void wait_absorbed(std::uint64_t ticket);

  /// Blocks until every published ticket has been absorbed. Rethrows
  /// failures. The pool stays usable afterwards.
  void drain();

  unsigned threads() const { return threads_; }
  std::size_t capacity() const { return capacity_; }

  /// Thread budget policy: how many checker worker threads a single run
  /// should spawn so that `host_jobs` concurrent runs (campaign --jobs)
  /// plus their absorbers cannot oversubscribe the host. Returns
  /// min(requested, max(0, hardware_concurrency / host_jobs - 1));
  /// 0 means "run inline" (no pool). `requested` == 0 always maps to 0.
  static unsigned bounded(unsigned requested, unsigned host_jobs);

 private:
  /// One ticket's completion word, alone on its cache line so a worker
  /// finishing slot k never invalidates the line the absorber is polling
  /// for slot k+1. Holds ticket+1 when the work half is done (0 = empty);
  /// storing the ticket rather than a flag makes slot reuse across ring
  /// laps self-checking.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> done{0};
  };

  /// A park site: waiters spin on their predicate first, then register in
  /// `parked` (under the mutex) and block on the condvar. Wakers skip the
  /// mutex entirely while `parked` reads 0 — the common case when the
  /// pipeline is flowing — turning per-ticket notification into one
  /// relaxed load. The watched counters use seq_cst stores, so the
  /// store-then-check-parked / register-then-check-state pair can never
  /// both miss (Dekker).
  struct ParkLot {
    std::mutex mutex;
    std::condition_variable cv;
    std::atomic<int> parked{0};
  };

  template <typename Pred>
  void park_until(ParkLot& lot, Pred pred);
  static void wake(ParkLot& lot);
  static void wake_all(ParkLot& lot);

  void worker_loop(unsigned worker);
  void absorber_loop();
  void fail(std::exception_ptr error);
  void rethrow_if_failed();

  const unsigned threads_;
  const std::size_t capacity_;
  WorkFn work_;
  AbsorbFn absorb_;

  std::atomic<std::uint64_t> published_{0};  // tickets visible to workers
  std::atomic<std::uint64_t> claimed_{0};    // next ticket a worker takes
  std::atomic<std::uint64_t> absorbed_{0};   // tickets absorbed, in order
  std::atomic<bool> stop_{false};
  std::atomic<bool> failed_{false};
  std::vector<Slot> slots_;

  ParkLot worker_lot_;    // workers wait for published_ > claimed_
  ParkLot absorber_lot_;  // absorber waits for the next slot's done word
  ParkLot producer_lot_;  // producer waits for absorbed_ progress

  std::mutex error_mutex_;
  std::exception_ptr error_;

  std::vector<std::thread> workers_;
  std::thread absorber_;
};

}  // namespace paradet::runtime
