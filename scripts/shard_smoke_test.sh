#!/usr/bin/env bash
# End-to-end smoke test for cross-process campaign sharding: run the fault
# campaign example and the fig09 sweep reproduction as two shard processes
# each, merge their artifacts with merge_results, and require the merged
# file to be byte-identical to the file an unsharded run writes. Also
# checks the sweep drivers' usage-error paths (empty --benchmark filter,
# --checkpoint-every without --checkpoint). Exercises the real CLI surface
# (--shard/--out parsing, artifact I/O, the merge tool) rather than the
# library entry points the unit tests already cover.
set -euo pipefail

if [[ $# -ne 3 ]]; then
  echo "usage: $0 <example_fault_campaign> <merge_results> <bench_fig09>" >&2
  exit 2
fi
fault_campaign=$1
merge_results=$2
fig09=$3

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

trials=2  # trials per fault site: 10 campaign tasks total.

"$fault_campaign" $trials --jobs=2 --shard=0/2 --out="$workdir/shard_0.json" \
    > "$workdir/shard_0.log"
"$fault_campaign" $trials --jobs=2 --shard=1/2 --out="$workdir/shard_1.json" \
    > "$workdir/shard_1.log"
"$merge_results" --out="$workdir/merged.json" \
    "$workdir/shard_0.json" "$workdir/shard_1.json" > "$workdir/merge.log"
"$fault_campaign" $trials --jobs=2 --out="$workdir/whole.json" \
    > "$workdir/whole.log"

if ! cmp "$workdir/merged.json" "$workdir/whole.json"; then
  echo "FAIL: merged shard artifact differs from the unsharded artifact" >&2
  exit 1
fi
echo "OK: 2-shard fault-campaign merge is byte-identical to the unsharded artifact"

# The fig09 sweep (a SweepCampaign grid of frequency x workload cells)
# through the same sharded path: 5 points over one kernel at a small scale.
fig09_flags=(--scale=0.02 --benchmark=randacc)
"$fig09" "${fig09_flags[@]}" --jobs=2 --shard=0/2 \
    --out="$workdir/fig09_0.json" > "$workdir/fig09_0.log"
"$fig09" "${fig09_flags[@]}" --jobs=2 --shard=1/2 \
    --out="$workdir/fig09_1.json" > "$workdir/fig09_1.log"
"$merge_results" --out="$workdir/fig09_merged.json" \
    "$workdir/fig09_0.json" "$workdir/fig09_1.json" > "$workdir/fig09_merge.log"
"$fig09" "${fig09_flags[@]}" --jobs=2 --out="$workdir/fig09_whole.json" \
    > "$workdir/fig09_whole.log"

if ! cmp "$workdir/fig09_merged.json" "$workdir/fig09_whole.json"; then
  echo "FAIL: merged fig09 sweep artifact differs from the unsharded artifact" >&2
  exit 1
fi
echo "OK: 2-shard fig09 sweep merge is byte-identical to the unsharded artifact"

# An over-narrow filter must be a loud error (exit 1 + diagnostic), not an
# empty table with exit 0.
if "$fig09" --benchmark=no_such_kernel > /dev/null 2> "$workdir/empty.err"; then
  echo "FAIL: empty suite filter exited 0" >&2
  exit 1
fi
if ! grep -q "matches no" "$workdir/empty.err"; then
  echo "FAIL: empty suite filter printed no diagnostic" >&2
  exit 1
fi
echo "OK: empty --benchmark filter fails loudly"

# --checkpoint-every without --checkpoint is a usage error (exit 2).
if "$fig09" --checkpoint-every=4 > /dev/null 2> "$workdir/every.err"; then
  echo "FAIL: --checkpoint-every without --checkpoint exited 0" >&2
  exit 1
fi
echo "OK: --checkpoint-every without --checkpoint fails loudly"
