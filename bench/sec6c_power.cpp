// Section VI-C: power overhead estimate. Paper: 12 x 1GHz x 34uW/MHz
// (Rocket, 40nm -- an upper bound at 20nm) vs 3.2GHz x 800uW/MHz (A57)
// gives ~16%.
#include <cstdio>

#include "common/config.h"
#include "model/area_power.h"

int main() {
  using namespace paradet;
  const SystemConfig cfg = SystemConfig::standard();
  const auto power = model::estimate_power(cfg);
  std::printf("# Section VI-C: power overhead\n");
  std::printf("# paper reference: ~16%% upper bound\n");
  std::printf("main core  (%4llu MHz x 800 uW/MHz): %7.1f mW\n",
              static_cast<unsigned long long>(cfg.main_core.freq_mhz),
              power.main_core_mw);
  std::printf("checkers (%2ux %4llu MHz x 34 uW/MHz): %7.1f mW\n",
              cfg.checker.num_cores,
              static_cast<unsigned long long>(cfg.checker.freq_mhz),
              power.checker_cores_mw);
  std::printf("power overhead (upper bound)      : %5.1f %%\n",
              100.0 * power.overhead());
  // Sensitivity: halving the checker frequency halves the bound.
  SystemConfig half = cfg;
  half.checker.freq_mhz /= 2;
  std::printf("at %llu MHz checkers              : %5.1f %%\n",
              static_cast<unsigned long long>(half.checker.freq_mhz),
              100.0 * model::estimate_power(half).overhead());
  return 0;
}
