#include "sim/uop_info.h"

namespace paradet::sim {

using isa::Format;
using isa::Opcode;

UopRegs uop_regs(const isa::Inst& inst) {
  UopRegs regs;
  const Opcode op = inst.op;

  const auto add_src = [&regs](unsigned unified, bool skip_x0) {
    if (skip_x0 && unified == 0) return;
    regs.srcs[regs.n_srcs++] = unified;
  };
  const auto int_reg = [](RegIndex r) { return isa::unified_int(r); };
  const auto fp_reg = [](RegIndex r) { return isa::unified_fp(r); };

  switch (isa::format_of(op)) {
    case Format::kR:
      add_src(isa::reads_fp_rs1(op) ? fp_reg(inst.rs1) : int_reg(inst.rs1),
              !isa::reads_fp_rs1(op));
      add_src(isa::reads_fp_rs2(op) ? fp_reg(inst.rs2) : int_reg(inst.rs2),
              !isa::reads_fp_rs2(op));
      break;
    case Format::kR1:
      add_src(isa::reads_fp_rs1(op) ? fp_reg(inst.rs1) : int_reg(inst.rs1),
              !isa::reads_fp_rs1(op));
      break;
    case Format::kR4:
      add_src(fp_reg(inst.rs1), false);
      add_src(fp_reg(inst.rs2), false);
      add_src(fp_reg(inst.rs3), false);
      break;
    case Format::kI:
      add_src(int_reg(inst.rs1), true);  // base register or ALU operand.
      break;
    case Format::kS:
      // Stores read base (rs1) and data (rd field).
      add_src(int_reg(inst.rs1), true);
      if (isa::is_store(op)) {
        add_src(isa::store_data_is_fp(op) ? fp_reg(inst.rd)
                                          : int_reg(inst.rd),
                !isa::store_data_is_fp(op));
      }
      break;
    case Format::kB:
      add_src(int_reg(inst.rs1), true);
      add_src(int_reg(inst.rs2), true);
      break;
    case Format::kJ:
    case Format::kU:
    case Format::kSys:
      break;
  }

  if (isa::writes_fp_reg(op)) {
    regs.dest = static_cast<int>(fp_reg(inst.rd));
  } else if (isa::writes_int_reg(op) && inst.rd != 0) {
    regs.dest = static_cast<int>(int_reg(inst.rd));
  }
  return regs;
}

CtrlKind control_kind(const isa::Inst& inst) {
  if (isa::is_cond_branch(inst.op)) return CtrlKind::kCond;
  if (inst.op == isa::Opcode::kJal) {
    return inst.rd == 1 ? CtrlKind::kCall : CtrlKind::kJump;
  }
  if (inst.op == isa::Opcode::kJalr) {
    return inst.rs1 == 1 && inst.rd == 0 ? CtrlKind::kRet : CtrlKind::kIndirect;
  }
  return CtrlKind::kNone;
}

InstStatic make_inst_static(const isa::Inst& inst) {
  InstStatic statics;
  const isa::CrackedInst cracked = isa::crack(inst);
  statics.uop_count = static_cast<std::uint8_t>(cracked.count);
  statics.mem_uops = static_cast<std::uint8_t>(isa::mem_uop_count(inst.op));
  for (unsigned u = 0; u < cracked.count; ++u) {
    UopStatic& uop = statics.uops[u];
    uop.inst = cracked.uops[u].inst;
    uop.regs = uop_regs(uop.inst);
    uop.cls = isa::exec_class(uop.inst.op);
    uop.ctrl = control_kind(uop.inst);
    uop.is_load = isa::is_load(uop.inst.op);
    uop.is_store = isa::is_store(uop.inst.op);
    uop.is_jump = isa::is_jump(uop.inst.op);
    uop.consumes_capture = uop.is_load || uop.is_store ||
                           uop.inst.op == isa::Opcode::kRdcycle;
  }
  return statics;
}

ProgramStatics::ProgramStatics(const isa::PredecodedImage& image)
    : base_(image.base) {
  table_.resize(image.insts.size());
  valid_.assign(image.valid.begin(), image.valid.end());
  for (std::size_t i = 0; i < table_.size(); ++i) {
    if (valid_[i] != 0) table_[i] = make_inst_static(image.insts[i]);
  }
}

}  // namespace paradet::sim
