// Register checkpoints (§IV-D, §IV-E). The main core copies its
// architectural register file (32 int + 32 fp) and pc whenever a load-store
// log segment seals; each checkpoint is simultaneously the *end* checkpoint
// validated by one checker core and the *start* checkpoint another checker
// core executes from. Taking a checkpoint pauses commit for
// MainCoreConfig::checkpoint_latency_cycles (16 by default: a two-ported
// register file copying 32 registers from each file).
#pragma once

#include <cstdint>

#include "arch/state.h"
#include "common/types.h"

namespace paradet::core {

struct RegisterCheckpoint {
  arch::ArchState state;
  /// Dynamic instruction (macro-op) index at which the checkpoint was taken;
  /// the checkpoint captures state *before* instruction `seq` executes.
  InstSeq seq = 0;
  /// Main-core cycle at which the copy completed.
  Cycle taken_at = 0;

  bool operator==(const RegisterCheckpoint&) const = default;
};

/// Bookkeeping for checkpoint costs. The timing behaviour (a commit pause)
/// is applied by the main-core model; this unit tracks counts and the SRAM
/// footprint for the area model.
class CheckpointUnit {
 public:
  explicit CheckpointUnit(unsigned latency_cycles)
      : latency_cycles_(latency_cycles) {}

  RegisterCheckpoint take(const arch::ArchState& state, InstSeq seq,
                          Cycle now) {
    ++taken_;
    return RegisterCheckpoint{state, seq, now + latency_cycles_};
  }

  unsigned latency_cycles() const { return latency_cycles_; }
  std::uint64_t checkpoints_taken() const { return taken_; }

  /// Architectural bytes copied per checkpoint (for the area/power model).
  static constexpr std::uint64_t bytes_per_checkpoint() {
    return (kNumIntRegs + kNumFpRegs) * 8 + 8;  // registers + pc.
  }

 private:
  unsigned latency_cycles_;
  std::uint64_t taken_ = 0;
};

}  // namespace paradet::core
