#include "common/config.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace paradet {

namespace {

[[noreturn]] void bad_flag(const char* arg, const char* expected) {
  std::fprintf(stderr, "invalid argument '%s': expected %s\n", arg, expected);
  std::exit(2);
}

/// strtoull, but rejecting the sign characters strtoull itself accepts (a
/// negative value would silently wrap to a huge unsigned one) and numeric
/// overflow (which strtoull silently saturates to ULLONG_MAX). Failure is
/// signalled the way callers already check: *end left at `text`.
unsigned long long parse_u64(const char* text, char** end) {
  if (*text < '0' || *text > '9') {
    *end = const_cast<char*>(text);
    return 0;
  }
  errno = 0;
  const unsigned long long value = std::strtoull(text, end, 10);
  if (errno == ERANGE) {
    *end = const_cast<char*>(text);
    return 0;
  }
  return value;
}

/// Parses a worker count: 0 (= all cores) .. 65535. `flag` is the full
/// argument, for the error message.
unsigned parse_jobs(const char* flag, const char* text) {
  char* end = nullptr;
  const unsigned long long value = parse_u64(text, &end);
  if (end == text || *end != '\0' || value > 65535) {
    bad_flag(flag, "a worker count between 0 (all cores) and 65535");
  }
  return static_cast<unsigned>(value);
}

}  // namespace

const char* frontend_kind_name(FrontEndKind kind) {
  switch (kind) {
    case FrontEndKind::kTournament: return "tournament";
    case FrontEndKind::kGshare: return "gshare";
    case FrontEndKind::kBimodal: return "bimodal";
    case FrontEndKind::kAlwaysTaken: return "always-taken";
  }
  return "unknown";
}

bool parse_frontend_kind(std::string_view name, FrontEndKind* out) {
  if (name == "tournament") { *out = FrontEndKind::kTournament; return true; }
  if (name == "gshare") { *out = FrontEndKind::kGshare; return true; }
  if (name == "bimodal") { *out = FrontEndKind::kBimodal; return true; }
  if (name == "always-taken" || name == "always_taken") {
    *out = FrontEndKind::kAlwaysTaken;
    return true;
  }
  return false;
}

bool BranchPredictorConfig::valid_table_sizes() const {
  const auto pow2 = [](unsigned n) { return n != 0 && (n & (n - 1)) == 0; };
  return pow2(local_entries) && pow2(global_entries) &&
         pow2(chooser_entries) && pow2(btb_entries) &&
         local_history_bits > 0 && local_history_bits < 16;
}

RuntimeOptions RuntimeOptions::from_args(int argc, char** argv,
                                         bool campaign_flags) {
  RuntimeOptions options;
  const char* checkpoint_every_flag = nullptr;
  const char* checkpoint_flag = nullptr;
  const char* journal_flag = nullptr;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (!campaign_flags && (std::strncmp(arg, "--shard", 7) == 0 ||
                            std::strncmp(arg, "--out", 5) == 0 ||
                            std::strncmp(arg, "--checkpoint", 12) == 0 ||
                            std::strncmp(arg, "--journal=", 10) == 0 ||
                            std::strcmp(arg, "--journal") == 0)) {
      std::fprintf(stderr,
                   "'%s' is not supported by this driver (it does not run as "
                   "a shardable campaign)\n",
                   arg);
      std::exit(2);
    }
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      options.jobs = parse_jobs(arg, arg + 7);
    } else if (std::strcmp(arg, "--jobs") == 0 || std::strcmp(arg, "-j") == 0) {
      if (i + 1 >= argc) bad_flag(arg, "a worker count to follow");
      ++i;
      options.jobs = parse_jobs(argv[i], argv[i]);
    } else if (std::strncmp(arg, "-j", 2) == 0 && arg[2] != '\0') {
      options.jobs = parse_jobs(arg, arg + 2);
    } else if (std::strncmp(arg, "--shard=", 8) == 0) {
      const char* spec = arg + 8;
      char* end = nullptr;
      const unsigned long long k = parse_u64(spec, &end);
      if (end == spec || *end != '/') bad_flag(arg, "--shard=K/N");
      const char* n_text = end + 1;
      const unsigned long long n = parse_u64(n_text, &end);
      if (end == n_text || *end != '\0' || n == 0 || k >= n) {
        bad_flag(arg, "--shard=K/N with 0 <= K < N");
      }
      options.shard_index = k;
      options.shard_count = n;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      options.out_path = arg + 6;
    } else if (std::strncmp(arg, "--checkpoint=", 13) == 0) {
      options.checkpoint_path = arg + 13;
      checkpoint_flag = arg;
    } else if (std::strncmp(arg, "--journal=", 10) == 0) {
      // Alias: the checkpoint mechanism *is* the append-only journal
      // (+ compacted snapshot); both spellings name the same files.
      options.checkpoint_path = arg + 10;
      journal_flag = arg;
    } else if (std::strncmp(arg, "--checker-threads=", 18) == 0) {
      const char* text = arg + 18;
      char* end = nullptr;
      const unsigned long long value = parse_u64(text, &end);
      if (end == text || *end != '\0' || value > 65535) {
        bad_flag(arg,
                 "a replay thread count between 0 (inline replay) and 65535");
      }
      options.checker_threads = static_cast<unsigned>(value);
    } else if (std::strncmp(arg, "--checker-batch=", 16) == 0) {
      const char* text = arg + 16;
      if (std::strcmp(text, "auto") == 0) {
        options.checker_batch = CheckerExec::kAutoBatch;
      } else {
        char* end = nullptr;
        const unsigned long long value = parse_u64(text, &end);
        if (end == text || *end != '\0' || value == 0 || value > 4096) {
          bad_flag(arg,
                   "--checker-batch=N with 1 <= N <= 4096 segments per "
                   "replay ticket, or --checker-batch=auto");
        }
        options.checker_batch = static_cast<unsigned>(value);
      }
    } else if (std::strncmp(arg, "--checkpoint-every=", 19) == 0) {
      char* end = nullptr;
      const unsigned long long every = parse_u64(arg + 19, &end);
      if (end == arg + 19 || *end != '\0' || every == 0) {
        bad_flag(arg, "--checkpoint-every=M with M >= 1");
      }
      options.checkpoint_every = every;
      checkpoint_every_flag = arg;
    } else if (std::strcmp(arg, "--shard") == 0 ||
               std::strcmp(arg, "--out") == 0 ||
               std::strcmp(arg, "--checkpoint") == 0 ||
               std::strcmp(arg, "--journal") == 0 ||
               std::strcmp(arg, "--checker-threads") == 0 ||
               std::strcmp(arg, "--checker-batch") == 0 ||
               std::strcmp(arg, "--checkpoint-every") == 0) {
      // Only the '=' forms exist; swallowing e.g. `--shard 0/2` would let
      // the next driver's positional parsing misread "0/2".
      bad_flag(arg, "the --flag=value form");
    }
  }
  // Two spellings of the same path: if they disagree, which one wins is
  // anyone's guess — refuse rather than pick.
  if (checkpoint_flag != nullptr && journal_flag != nullptr) {
    bad_flag(journal_flag,
             "only one of --checkpoint/--journal (they are aliases for the "
             "same checkpoint files)");
  }
  // A checkpoint interval without a checkpoint file would silently
  // checkpoint nothing; that is an operator error, not a default.
  if (checkpoint_every_flag != nullptr && options.checkpoint_path.empty()) {
    bad_flag(checkpoint_every_flag,
             "--checkpoint=PATH alongside it (an interval without a "
             "checkpoint file checkpoints nothing)");
  }
  return options;
}

SystemConfig SystemConfig::standard() {
  SystemConfig cfg;
  cfg.l1i = CacheConfig{.name = "L1I",
                        .size_bytes = 32 * 1024,
                        .assoc = 2,
                        .line_bytes = 64,
                        .hit_latency = 2,
                        .mshrs = 6};
  cfg.l1d = CacheConfig{.name = "L1D",
                        .size_bytes = 32 * 1024,
                        .assoc = 2,
                        .line_bytes = 64,
                        .hit_latency = 2,
                        .mshrs = 6};
  cfg.l2 = CacheConfig{.name = "L2",
                       .size_bytes = 1024 * 1024,
                       .assoc = 16,
                       .line_bytes = 64,
                       .hit_latency = 12,
                       .mshrs = 16};
  return cfg;
}

SystemConfig SystemConfig::baseline_unchecked() {
  SystemConfig cfg = standard();
  cfg.detection.enabled = false;
  cfg.detection.simulate_checkers = false;
  cfg.detection.load_forwarding_unit = false;
  return cfg;
}

}  // namespace paradet
