// Figure 9: normalised slowdown when varying the checker-core clock
// frequency (125MHz..2GHz, 12 cores). Paper: memory-bound benchmarks
// (randacc, stream) barely slow down even at 125MHz; compute-bound ones
// (swaptions, bitcount) reach ~4-4.5x below 500MHz because the aggregate
// checker throughput cannot keep up and the main core stalls on log-full.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace paradet;
  const auto options = bench::Options::parse(argc, argv);
  bench::print_header(
      "Figure 9: slowdown vs checker-core frequency (12 cores)",
      "125MHz: up to ~4.5x for compute-bound, ~1x for memory-bound; "
      "1GHz+: all ~1x");

  const std::uint64_t freqs_mhz[] = {125, 250, 500, 1000, 2000};
  std::printf("%-14s", "benchmark");
  for (const auto freq : freqs_mhz) {
    std::printf(" %7lluMHz", static_cast<unsigned long long>(freq));
  }
  std::printf("\n");

  // One suite sweep per frequency, transposed for printing.
  std::vector<std::vector<bench::SuiteRun>> sweeps;
  for (const auto freq : freqs_mhz) {
    SystemConfig config = SystemConfig::standard();
    config.checker.freq_mhz = freq;
    sweeps.push_back(bench::run_suite(options, config));
  }
  if (sweeps.empty() || sweeps[0].empty()) return 0;
  for (std::size_t b = 0; b < sweeps[0].size(); ++b) {
    std::printf("%-14s", sweeps[0][b].name.c_str());
    for (const auto& sweep : sweeps) std::printf(" %10.3f", sweep[b].slowdown());
    std::printf("\n");
  }
  std::printf("%-14s", "mean");
  for (const auto& sweep : sweeps) {
    std::printf(" %10.3f", bench::mean_slowdown(sweep));
  }
  std::printf("\n");
  return 0;
}
