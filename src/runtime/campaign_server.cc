#include "runtime/campaign_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <set>
#include <stdexcept>
#include <utility>

#include "runtime/campaign_run.h"
#include "runtime/canonical_json.h"
#include "runtime/shard_launcher.h"
#include "runtime/wire_protocol.h"

namespace paradet::runtime {

// --- Campaign specs ----------------------------------------------------------

bool CampaignSpec::operator==(const CampaignSpec& other) const {
  const OrchestratorOptions& a = options;
  const OrchestratorOptions& b = other.options;
  return name == other.name && driver == other.driver &&
         a.shards == b.shards && a.jobs_per_shard == b.jobs_per_shard &&
         a.run_dir == b.run_dir && a.merged_out == b.merged_out &&
         a.retries == b.retries && a.straggler_factor == b.straggler_factor &&
         a.poll_ms == b.poll_ms && a.inject_kill == b.inject_kill;
}

std::string campaign_spec_body(const CampaignSpec& spec) {
  std::string body = "{\"name\":";
  json::append_string(body, spec.name);
  body += ",\"driver\":[";
  bool first = true;
  for (const std::string& arg : spec.driver) {
    if (!first) body += ',';
    first = false;
    json::append_string(body, arg);
  }
  body += "],\"shards\":";
  json::append_u64(body, spec.options.shards);
  body += ",\"jobs_per_shard\":";
  json::append_u64(body, spec.options.jobs_per_shard);
  body += ",\"run_dir\":";
  json::append_string(body, spec.options.run_dir);
  body += ",\"merged_out\":";
  json::append_string(body, spec.options.merged_out);
  body += ",\"retries\":";
  json::append_u64(body, spec.options.retries);
  body += ",\"straggler_factor\":";
  json::append_double(body, spec.options.straggler_factor);
  body += ",\"poll_ms\":";
  json::append_u64(body, spec.options.poll_ms);
  body += ",\"inject_kill\":";
  json::append_i64(body, spec.options.inject_kill);
  body += '}';
  return body;
}

CampaignSpec parse_campaign_spec(std::string_view body_text) {
  const json::Json body = json::parse(body_text);
  if (body.kind != json::Json::Kind::kObject) {
    throw std::runtime_error("campaign spec: expected a JSON object");
  }
  CampaignSpec spec;
  bool saw_driver = false, saw_shards = false, saw_run_dir = false;
  for (const auto& [key, value] : body.fields) {
    if (key == "name") {
      spec.name = value.as_string();
    } else if (key == "driver") {
      saw_driver = true;
      for (const json::Json& arg : value.as_array()) {
        spec.driver.push_back(arg.as_string());
      }
    } else if (key == "shards") {
      saw_shards = true;
      spec.options.shards = value.as_u64();
    } else if (key == "jobs_per_shard") {
      spec.options.jobs_per_shard = static_cast<unsigned>(value.as_u64());
    } else if (key == "run_dir") {
      saw_run_dir = true;
      spec.options.run_dir = value.as_string();
    } else if (key == "merged_out") {
      spec.options.merged_out = value.as_string();
    } else if (key == "retries") {
      spec.options.retries = static_cast<unsigned>(value.as_u64());
    } else if (key == "straggler_factor") {
      spec.options.straggler_factor = value.as_double();
    } else if (key == "poll_ms") {
      spec.options.poll_ms = static_cast<unsigned>(value.as_u64());
    } else if (key == "inject_kill") {
      spec.options.inject_kill = value.as_i64();
    } else {
      // A typo'd option silently falling back to its default would run
      // the wrong campaign; refuse instead.
      throw std::runtime_error("campaign spec: unknown key '" + key + "'");
    }
  }
  if (!saw_driver || spec.driver.empty()) {
    throw std::runtime_error("campaign spec: 'driver' is required");
  }
  if (!saw_shards) {
    throw std::runtime_error("campaign spec: 'shards' is required");
  }
  if (!saw_run_dir) {
    throw std::runtime_error("campaign spec: 'run_dir' is required");
  }
  return spec;
}

// --- Scheduler ---------------------------------------------------------------

struct CampaignScheduler::Entry {
  CampaignSpec spec;
  std::unique_ptr<CampaignRun> run;
  std::vector<std::string> lines;  ///< lines[i] carries seq i+1.
  std::FILE* journal = nullptr;    ///< <run_dir>/events.journal, append.

  ~Entry() {
    if (journal != nullptr) std::fclose(journal);
  }
};

CampaignScheduler::CampaignScheduler(ShardLauncher& launcher)
    : launcher_(launcher) {}

CampaignScheduler::~CampaignScheduler() = default;

void CampaignScheduler::append_line(Entry& entry, const std::string& kind,
                                    const std::string& data_body) {
  wire::Message message;
  message.type = "event";
  message.seq = entry.lines.size() + 1;
  message.body = "{\"campaign\":";
  json::append_string(message.body, entry.spec.name);
  message.body += ",\"kind\":";
  json::append_string(message.body, kind);
  message.body += ",\"data\":";
  message.body += data_body;
  message.body += '}';

  const std::string line = wire::message_line(message);
  entry.lines.push_back(line);
  if (entry.journal != nullptr) {
    std::fwrite(line.data(), 1, line.size(), entry.journal);
    std::fflush(entry.journal);  // durable before it is streamed.
  }
  if (sink_) sink_(entry.spec.name, message.seq, line);
}

CampaignScheduler::SubmitResult CampaignScheduler::submit(CampaignSpec spec) {
  if (spec.name.empty()) {
    spec.name = "campaign-" + std::to_string(next_auto_name_++);
  }
  if (campaigns_.count(spec.name) != 0) {
    return {"", "campaign '" + spec.name + "' already exists"};
  }
  for (const auto& [name, entry] : campaigns_) {
    if (entry->spec.options.run_dir == spec.options.run_dir) {
      return {"", "run_dir '" + spec.options.run_dir +
                  "' is already in use by campaign '" + name + "'"};
    }
  }

  auto entry = std::make_unique<Entry>();
  entry->spec = spec;
  Entry* raw = entry.get();
  try {
    std::filesystem::create_directories(spec.options.run_dir);
    const std::string journal_path = spec.options.run_dir + "/events.journal";
    raw->journal = std::fopen(journal_path.c_str(), "ab");
    if (raw->journal == nullptr) {
      throw std::runtime_error("cannot open '" + journal_path +
                               "': " + std::strerror(errno));
    }
    campaigns_[spec.name] = std::move(entry);
    std::string accepted = "{\"shards\":";
    json::append_u64(accepted, spec.options.shards);
    accepted += ",\"driver\":";
    json::append_string(accepted, spec.driver[0]);
    accepted += '}';
    append_line(*raw, "accepted", accepted);
    // The run launches every shard right here; its launch events land
    // after `accepted` in the journal.
    raw->run = std::make_unique<CampaignRun>(
        spec.driver, spec.options, launcher_,
        [this, raw](const CampaignEvent& event) {
          append_line(*raw, event.kind, event.body);
        });
  } catch (const std::exception& e) {
    campaigns_.erase(spec.name);
    return {"", e.what()};
  }
  return {spec.name, ""};
}

void CampaignScheduler::tick() {
  for (auto& [name, entry] : campaigns_) {
    if (entry->run && !entry->run->finished()) entry->run->tick();
  }
}

bool CampaignScheduler::busy() const {
  for (const auto& [name, entry] : campaigns_) {
    if (entry->run && !entry->run->finished()) return true;
  }
  return false;
}

bool CampaignScheduler::known(const std::string& campaign) const {
  return campaigns_.count(campaign) != 0;
}

bool CampaignScheduler::finished(const std::string& campaign) const {
  const auto it = campaigns_.find(campaign);
  return it != campaigns_.end() && it->second->run &&
         it->second->run->finished();
}

std::vector<std::string> CampaignScheduler::replay(
    const std::string& campaign, std::uint64_t from_seq) const {
  std::vector<std::string> lines;
  const auto it = campaigns_.find(campaign);
  if (it == campaigns_.end()) return lines;
  const std::vector<std::string>& all = it->second->lines;
  for (std::size_t i = from_seq; i < all.size(); ++i) lines.push_back(all[i]);
  return lines;
}

void CampaignScheduler::abort_all() {
  for (auto& [name, entry] : campaigns_) {
    if (entry->run && !entry->run->finished()) entry->run->abort();
  }
}

// --- The poll() daemon -------------------------------------------------------

namespace {

struct Endpoint {
  bool is_unix = true;
  std::string path;  ///< unix socket path.
  std::string host;  ///< tcp host (empty = loopback).
  int port = 0;
};

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("tcp:", 0) == 0) {
    ep.is_unix = false;
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    const std::string port_text =
        colon == std::string::npos ? rest : rest.substr(colon + 1);
    if (colon != std::string::npos) ep.host = rest.substr(0, colon);
    char* end = nullptr;
    ep.port = static_cast<int>(std::strtol(port_text.c_str(), &end, 10));
    if (end == port_text.c_str() || *end != '\0' || ep.port < 0 ||
        ep.port > 65535) {
      throw std::runtime_error("bad tcp endpoint '" + spec + "'");
    }
    return ep;
  }
  ep.path = spec.rfind("unix:", 0) == 0 ? spec.substr(5) : spec;
  if (ep.path.empty()) {
    throw std::runtime_error("bad endpoint '" + spec + "'");
  }
  return ep;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

int make_listener(const Endpoint& ep) {
  if (ep.is_unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      throw std::runtime_error(std::string("socket: ") +
                               std::strerror(errno));
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (ep.path.size() >= sizeof addr.sun_path) {
      ::close(fd);
      throw std::runtime_error("unix socket path too long: " + ep.path);
    }
    std::strncpy(addr.sun_path, ep.path.c_str(), sizeof addr.sun_path - 1);
    ::unlink(ep.path.c_str());  // a stale socket from a dead server.
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
        ::listen(fd, 16) < 0) {
      const std::string why = std::strerror(errno);
      ::close(fd);
      throw std::runtime_error("bind/listen on '" + ep.path + "': " + why);
    }
    return fd;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(ep.port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (!ep.host.empty() &&
      ::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad tcp host '" + ep.host + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 16) < 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("bind/listen tcp port " +
                             std::to_string(ep.port) + ": " + why);
  }
  return fd;
}

struct Connection {
  int fd = -1;
  wire::FrameDecoder decoder;
  std::string outbuf;
  std::set<std::string> watching;
  bool dead = false;
};

void queue_message(Connection& conn, const wire::Message& message) {
  conn.outbuf += wire::encode_frame(message);
}

void queue_error(Connection& conn, const std::string& what) {
  wire::Message reply;
  reply.type = "error";
  reply.body = "{\"message\":";
  json::append_string(reply.body, what);
  reply.body += '}';
  queue_message(conn, reply);
}

}  // namespace

std::uint64_t run_campaign_server(const CampaignServerOptions& options,
                                  ShardLauncher& launcher,
                                  const volatile std::sig_atomic_t* stop) {
  // A watcher that vanished mid-write must be an EPIPE, not a fatal
  // signal: its campaign keeps running and its journal keeps the events
  // for the reconnect.
  ::signal(SIGPIPE, SIG_IGN);

  const Endpoint endpoint = parse_endpoint(options.endpoint);
  const int listener = make_listener(endpoint);
  set_nonblocking(listener);
  std::fprintf(stderr, "campaign_server: listening on %s\n",
               options.endpoint.c_str());

  CampaignScheduler scheduler(launcher);
  std::vector<std::unique_ptr<Connection>> conns;
  std::uint64_t served = 0;

  scheduler.set_line_sink([&conns](const std::string& campaign,
                                   std::uint64_t /*seq*/,
                                   const std::string& line) {
    const std::string frame = wire::frame_line(line);
    for (const auto& conn : conns) {
      if (!conn->dead && conn->watching.count(campaign) != 0) {
        conn->outbuf += frame;
      }
    }
  });

  const auto dispatch = [&](Connection& conn, const wire::Message& message) {
    if (message.type == "submit") {
      CampaignSpec spec;
      try {
        spec = parse_campaign_spec(message.body);
      } catch (const std::exception& e) {
        queue_error(conn, e.what());
        return;
      }
      const CampaignScheduler::SubmitResult result =
          scheduler.submit(std::move(spec));
      if (!result.error.empty()) {
        queue_error(conn, result.error);
        return;
      }
      ++served;
      wire::Message reply;
      reply.type = "submitted";
      reply.body = "{\"campaign\":";
      json::append_string(reply.body, result.campaign);
      reply.body += '}';
      queue_message(conn, reply);
      return;
    }
    if (message.type == "watch") {
      std::string campaign;
      std::uint64_t resume_from = 0;
      try {
        const json::Json body = json::parse(message.body);
        campaign = body.at("campaign").as_string();
        if (const json::Json* from = body.find("resume_from")) {
          resume_from = from->as_u64();
        }
      } catch (const std::exception& e) {
        queue_error(conn, e.what());
        return;
      }
      if (!scheduler.known(campaign)) {
        queue_error(conn, "unknown campaign '" + campaign + "'");
        return;
      }
      conn.watching.insert(campaign);
      // The reconnect path: everything past the client's last
      // acknowledged seq, streamed verbatim from the journal.
      for (const std::string& line : scheduler.replay(campaign, resume_from)) {
        conn.outbuf += wire::frame_line(line);
      }
      return;
    }
    queue_error(conn, "unsupported message type '" + message.type + "'");
  };

  while (*stop == 0) {
    std::vector<pollfd> fds;
    fds.push_back({listener, POLLIN, 0});
    for (const auto& conn : conns) {
      short events = POLLIN;
      if (!conn->outbuf.empty()) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
    }
    const int ready =
        ::poll(fds.data(), fds.size(), static_cast<int>(options.poll_ms));
    if (ready < 0 && errno != EINTR) {
      break;  // the loop's fd set is broken beyond repair.
    }

    if (ready > 0 && (fds[0].revents & POLLIN) != 0) {
      while (true) {
        const int fd = ::accept(listener, nullptr, nullptr);
        if (fd < 0) break;
        set_nonblocking(fd);
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        conns.push_back(std::move(conn));
      }
    }

    for (std::size_t i = 0; i < conns.size(); ++i) {
      Connection& conn = *conns[i];
      // fds[i + 1] only covers connections that existed at poll time.
      if (i + 1 >= fds.size() || fds[i + 1].fd != conn.fd) continue;
      const short revents = fds[i + 1].revents;

      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        char buf[1 << 16];
        while (true) {
          const ssize_t got = ::recv(conn.fd, buf, sizeof buf, 0);
          if (got > 0) {
            conn.decoder.feed(
                std::string_view(buf, static_cast<std::size_t>(got)));
            continue;
          }
          if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (got < 0 && errno == EINTR) continue;
          conn.dead = true;  // EOF or hard error.
          break;
        }
        try {
          while (const auto message = conn.decoder.next()) {
            dispatch(conn, *message);
          }
        } catch (const std::exception& e) {
          // Malformed frame: the stream cannot be resynchronized. Tell
          // the client why, flush what we can, drop the connection.
          queue_error(conn, e.what());
          conn.dead = true;
        }
      }

      if (!conn.outbuf.empty()) {
        const ssize_t sent =
            ::send(conn.fd, conn.outbuf.data(), conn.outbuf.size(), 0);
        if (sent > 0) {
          conn.outbuf.erase(0, static_cast<std::size_t>(sent));
        } else if (sent < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          conn.dead = true;
        }
      }
    }

    // Reap closed connections, flushing any pending error reply
    // best-effort first (the peer may already be gone — that's fine).
    for (std::size_t i = 0; i < conns.size();) {
      if (conns[i]->dead) {
        if (!conns[i]->outbuf.empty()) {
          ::send(conns[i]->fd, conns[i]->outbuf.data(),
                 conns[i]->outbuf.size(), 0);
        }
        ::close(conns[i]->fd);
        conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }

    scheduler.tick();
  }

  scheduler.abort_all();
  for (const auto& conn : conns) ::close(conn->fd);
  ::close(listener);
  if (endpoint.is_unix) ::unlink(endpoint.path.c_str());
  std::fprintf(stderr, "campaign_server: shut down (%llu campaign%s served)\n",
               static_cast<unsigned long long>(served), served == 1 ? "" : "s");
  return served;
}

}  // namespace paradet::runtime
