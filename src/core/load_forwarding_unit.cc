#include "core/load_forwarding_unit.h"

namespace paradet::core {

// Header-only; anchor translation unit.

}  // namespace paradet::core
