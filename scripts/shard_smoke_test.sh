#!/usr/bin/env bash
# End-to-end smoke test for cross-process campaign sharding: run the fault
# campaign example and the fig09 sweep reproduction as two shard processes
# each, merge their artifacts with merge_results, and require the merged
# file to be byte-identical to the file an unsharded run writes; then run
# the same fig09 sweep through campaign_orchestrator (3 shards, one
# injected SIGKILL + checkpoint restart) and require *its* merged artifact
# to be byte-identical too. Also checks the sweep drivers' usage-error
# paths (empty --benchmark filter, --checkpoint-every without
# --checkpoint, --checkpoint alongside --journal). Exercises the real CLI
# surface (flag parsing, artifact I/O, the merge tool, the subprocess
# orchestrator) rather than the library entry points the unit tests
# already cover.
set -euo pipefail

if [[ $# -ne 4 ]]; then
  echo "usage: $0 <example_fault_campaign> <merge_results> <bench_fig09>" \
       "<campaign_orchestrator>" >&2
  exit 2
fi
fault_campaign=$1
merge_results=$2
fig09=$3
orchestrator=$4

# Everything below lands in one fresh temp dir, removed on *every* exit —
# success, failure or signal — so a failed step can never leave stale
# artifacts behind to confuse the next run.
workdir=$(mktemp -d)
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT HUP INT TERM

trials=2  # trials per fault site: 10 campaign tasks total.

"$fault_campaign" $trials --jobs=2 --shard=0/2 --out="$workdir/shard_0.json" \
    > "$workdir/shard_0.log"
"$fault_campaign" $trials --jobs=2 --shard=1/2 --out="$workdir/shard_1.json" \
    > "$workdir/shard_1.log"
"$merge_results" --out="$workdir/merged.json" \
    "$workdir/shard_0.json" "$workdir/shard_1.json" > "$workdir/merge.log"
"$fault_campaign" $trials --jobs=2 --out="$workdir/whole.json" \
    > "$workdir/whole.log"

if ! cmp "$workdir/merged.json" "$workdir/whole.json"; then
  echo "FAIL: merged shard artifact differs from the unsharded artifact" >&2
  exit 1
fi
echo "OK: 2-shard fault-campaign merge is byte-identical to the unsharded artifact"

# The fig09 sweep (a SweepCampaign grid of frequency x workload cells)
# through the same sharded path: 5 points over one kernel at a small scale.
fig09_flags=(--scale=0.02 --benchmark=randacc)
"$fig09" "${fig09_flags[@]}" --jobs=2 --shard=0/2 \
    --out="$workdir/fig09_0.json" > "$workdir/fig09_0.log"
"$fig09" "${fig09_flags[@]}" --jobs=2 --shard=1/2 \
    --out="$workdir/fig09_1.json" > "$workdir/fig09_1.log"
"$merge_results" --out="$workdir/fig09_merged.json" \
    "$workdir/fig09_0.json" "$workdir/fig09_1.json" > "$workdir/fig09_merge.log"
"$fig09" "${fig09_flags[@]}" --jobs=2 --out="$workdir/fig09_whole.json" \
    > "$workdir/fig09_whole.log"

if ! cmp "$workdir/fig09_merged.json" "$workdir/fig09_whole.json"; then
  echo "FAIL: merged fig09 sweep artifact differs from the unsharded artifact" >&2
  exit 1
fi
echo "OK: 2-shard fig09 sweep merge is byte-identical to the unsharded artifact"

# The orchestrator on the same sweep: 3 shard subprocesses, one injected
# SIGKILL after checkpoint progress (then a restart that resumes from the
# journal), auto-merge — and the merged file must still match the
# unsharded artifact byte for byte.
"$orchestrator" --shards=3 --jobs-per-shard=2 --run-dir="$workdir/orch" \
    --inject-kill=1 --out="$workdir/orch_merged.json" \
    -- "$fig09" "${fig09_flags[@]}" --checkpoint-every=1 \
    > "$workdir/orch.out" 2> "$workdir/orch.log"

if ! cmp "$workdir/orch_merged.json" "$workdir/fig09_whole.json"; then
  echo "FAIL: orchestrator-merged artifact differs from the unsharded one" >&2
  exit 1
fi
# Either the kill landed mid-run ("restarting from its checkpoint") or
# the shard outran it and was relaunched once anyway ("relaunching once");
# both exercise the checkpoint-resume path.
if ! grep -qE "restarting from its checkpoint|relaunching once" \
    "$workdir/orch.log"; then
  echo "FAIL: orchestrator log shows no restart (injected kill never hit)" >&2
  cat "$workdir/orch.log" >&2
  exit 1
fi
echo "OK: orchestrator (3 shards, injected kill + restart) merge is" \
     "byte-identical to the unsharded artifact"

# --journal is the same checkpoint mechanism under another name: a run
# journaled under --journal resumes and completes like any checkpoint.
"$fig09" "${fig09_flags[@]}" --journal="$workdir/fig09_j.ckpt.json" \
    --out="$workdir/fig09_j.json" > /dev/null
if ! cmp "$workdir/fig09_j.json" "$workdir/fig09_whole.json"; then
  echo "FAIL: --journal run artifact differs from the plain run" >&2
  exit 1
fi
echo "OK: --journal alias produces the identical artifact"

# Both spellings at once is ambiguous and must exit 2.
if "$fig09" --checkpoint=a.json --journal=b.json > /dev/null 2>&1; then
  echo "FAIL: --checkpoint alongside --journal exited 0" >&2
  exit 1
fi
echo "OK: --checkpoint alongside --journal fails loudly"

# An over-narrow filter must be a loud error (exit 1 + diagnostic), not an
# empty table with exit 0.
if "$fig09" --benchmark=no_such_kernel > /dev/null 2> "$workdir/empty.err"; then
  echo "FAIL: empty suite filter exited 0" >&2
  exit 1
fi
if ! grep -q "matches no" "$workdir/empty.err"; then
  echo "FAIL: empty suite filter printed no diagnostic" >&2
  exit 1
fi
echo "OK: empty --benchmark filter fails loudly"

# --checkpoint-every without --checkpoint is a usage error (exit 2).
if "$fig09" --checkpoint-every=4 > /dev/null 2> "$workdir/every.err"; then
  echo "FAIL: --checkpoint-every without --checkpoint exited 0" >&2
  exit 1
fi
echo "OK: --checkpoint-every without --checkpoint fails loudly"
