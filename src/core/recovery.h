// Error *correction* on top of the paper's detection scheme -- the §VIII
// future-work direction, built with the write-ahead-logging recovery the
// paper cites in §IV-F.
//
// Detection deliberately lets potentially-faulty stores escape to memory
// (§IV-F): holding them back would serialise checking. To add correction,
// the commit stage additionally records each store's *old* value in an
// undo log, tagged with the segment ordinal it belongs to. Once a
// segment's check validates, its undo records are dead and can be
// discarded (strong induction: everything before it is known-good). When
// a check fails, every store belonging to segments at or after the first
// failing ordinal is rolled back newest-first, the register file is
// restored from the failing segment's start checkpoint -- which the
// induction argument has just proven correct -- and execution re-runs
// from there. A transient fault does not recur, so re-execution completes
// cleanly; a hard fault would be re-detected and escalated.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/interpreter.h"
#include "arch/memory.h"
#include "common/types.h"
#include "core/checkpoint.h"

namespace paradet::core {

/// One write-ahead undo record: enough to reverse a committed store.
struct UndoRecord {
  std::uint64_t segment_ordinal = 0;
  Addr addr = 0;
  std::uint64_t old_value = 0;
  std::uint8_t size = 0;
};

/// Commit-order undo log. Records are appended as stores commit; rollback
/// walks them newest-first so overlapping stores reverse correctly.
class UndoLog {
 public:
  void record(std::uint64_t segment_ordinal, Addr addr,
              std::uint64_t old_value, std::uint8_t size) {
    records_.push_back(UndoRecord{segment_ordinal, addr, old_value, size});
  }

  /// Discards records for segments proven correct (ordinal < `validated`).
  /// In hardware this is a head-pointer advance; here we compact.
  void discard_below(std::uint64_t validated) {
    std::erase_if(records_, [validated](const UndoRecord& r) {
      return r.segment_ordinal < validated;
    });
  }

  /// Reverses every store belonging to segments >= `from_ordinal`,
  /// newest-first. Returns the number of stores undone.
  std::uint64_t rollback(arch::SparseMemory& memory,
                         std::uint64_t from_ordinal) const;

  std::size_t size() const { return records_.size(); }
  const std::vector<UndoRecord>& records() const { return records_; }

 private:
  std::vector<UndoRecord> records_;
};

/// Outcome of a rollback + re-execution attempt.
struct RecoveryOutcome {
  bool recovered = false;
  std::uint64_t stores_rolled_back = 0;
  std::uint64_t instructions_replayed = 0;
  arch::Trap replay_trap = arch::Trap::kNone;
  arch::ArchState final_state;
};

/// Rolls `memory` back to the start of `restore_point`'s segment and
/// functionally re-executes until HALT/FAULT or `max_instructions`.
/// `from_ordinal` is the first failing segment (DetectionEvent ordinal).
/// `image`, when given (callers with a LoadedProgram have one), keeps the
/// replay on the predecoded fetch path instead of the per-pc map.
RecoveryOutcome recover_and_replay(arch::SparseMemory& memory,
                                   const UndoLog& undo_log,
                                   std::uint64_t from_ordinal,
                                   const RegisterCheckpoint& restore_point,
                                   std::uint64_t max_instructions,
                                   const isa::PredecodedImage* image = nullptr);

}  // namespace paradet::core
