#include "arch/interpreter.h"

#include "arch/interpreter_inline.h"
#include "isa/encoding.h"

namespace paradet::arch {

StepResult execute(const isa::Inst& inst, ArchState& state, DataPort& port) {
  // Dynamic-dispatch wrapper; the hot loops use execute_inline with their
  // concrete (final) port types instead.
  return execute_inline(inst, state, port);
}

const isa::Inst* DecodeCache::decode_slow(Addr pc) {
  ++fallback_decodes_;
  if ((pc & 3) != 0) return nullptr;
  const auto it = cache_.find(pc);
  if (it != cache_.end()) return &it->second;
  const auto word = static_cast<std::uint32_t>(
      shared_imem_ ? imem_.read_shared(pc, 4) : imem_.read(pc, 4));
  const auto decoded = isa::decode(word);
  if (!decoded.has_value()) return nullptr;
  return &cache_.emplace(pc, *decoded).first->second;
}

StepResult Machine::step(ArchState& state) {
  const isa::Inst* inst = decode_.decode_at(state.pc);
  if (inst == nullptr) {
    StepResult result;
    result.trap = Trap::kIllegal;
    result.next_pc = state.pc;
    return result;
  }
  return execute(*inst, state, port_);
}

Trap Machine::run(ArchState& state, std::uint64_t max_instructions,
                  std::uint64_t* executed) {
  for (std::uint64_t i = 0; i < max_instructions; ++i) {
    const StepResult result = step(state);
    if (result.trap != Trap::kNone) {
      if (executed != nullptr) *executed = i;
      return result.trap;
    }
  }
  if (executed != nullptr) *executed = max_instructions;
  return Trap::kNone;
}

}  // namespace paradet::arch
