// The orchestrator's policy pieces — shard argv/path construction, the
// straggler decision and checkpoint-progress detection — as pure unit
// tests. The spawn/kill/restart/merge machinery runs for real in the
// `shard_cli_smoke` CTest (scripts/shard_smoke_test.sh drives
// campaign_orchestrator with an injected shard kill and cmp-checks the
// merged artifact) and in the CI orchestrator-smoke job.
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/campaign.h"
#include "runtime/orchestrator.h"
#include "runtime/serialize.h"

namespace paradet::runtime {
namespace {

OrchestratorOptions options_under(const std::string& run_dir) {
  OrchestratorOptions options;
  options.shards = 3;
  options.jobs_per_shard = 4;
  options.run_dir = run_dir;
  return options;
}

TEST(Orchestrator, ShardArgvAppendsTheCampaignFlagsLast) {
  const OrchestratorOptions options = options_under("/tmp/run");
  const std::vector<std::string> argv =
      shard_argv({"./bench_fig09", "--scale=0.05", "--checkpoint-every=1"},
                 options, 1);
  const std::vector<std::string> expected = {
      "./bench_fig09",          "--scale=0.05",
      "--checkpoint-every=1",   "--jobs=4",
      "--shard=1/3",            "--out=/tmp/run/shard_1.json",
      "--checkpoint=/tmp/run/shard_1.ckpt.json",
  };
  EXPECT_EQ(argv, expected);
}

TEST(Orchestrator, ShardArgvDropsCallerCampaignFlags) {
  // The orchestrator owns sharding/artifact/checkpoint paths. A caller's
  // own spellings — --journal especially, which drivers reject alongside
  // the appended --checkpoint — must be dropped, not passed through to
  // make every shard exit 2.
  const OrchestratorOptions options = options_under("/tmp/run");
  const std::vector<std::string> argv = shard_argv(
      {"./bench_fig09", "--journal=mine.json", "--scale=0.05",
       "--shard=0/9", "--out=mine.json", "--checkpoint=mine.ckpt"},
      options, 0);
  const std::vector<std::string> expected = {
      "./bench_fig09", "--scale=0.05",
      "--jobs=4",      "--shard=0/3",
      "--out=/tmp/run/shard_0.json",
      "--checkpoint=/tmp/run/shard_0.ckpt.json",
  };
  EXPECT_EQ(argv, expected);
}

TEST(Orchestrator, RunDirectoryLayoutIsPerShard) {
  const OrchestratorOptions options = options_under("dir");
  EXPECT_EQ(shard_out_path(options, 0), "dir/shard_0.json");
  EXPECT_EQ(shard_checkpoint_path(options, 2), "dir/shard_2.ckpt.json");
  EXPECT_EQ(shard_log_path(options, 1), "dir/shard_1.log");
}

TEST(Orchestrator, StragglerPolicyWaitsForAQuorum) {
  // Disabled entirely at factor 0.
  EXPECT_FALSE(is_straggler(100.0, {1.0, 1.0}, 3, 0.0));
  // No finished shards: nothing to compare against.
  EXPECT_FALSE(is_straggler(100.0, {}, 3, 3.0));
  // 1 of 3 finished is under the half-quorum.
  EXPECT_FALSE(is_straggler(100.0, {1.0}, 3, 3.0));
  // Quorum reached: 3x the median flags, under it does not.
  EXPECT_TRUE(is_straggler(3.5, {1.0, 1.1}, 3, 3.0));
  EXPECT_FALSE(is_straggler(2.5, {1.0, 1.1}, 3, 3.0));
  // Near-instant medians don't brand everything a straggler: the
  // threshold has an absolute floor.
  EXPECT_FALSE(is_straggler(0.05, {0.001, 0.001}, 2, 2.0));
}

TEST(Orchestrator, CheckpointProgressSeesSnapshotOrJournaledRecord) {
  const std::string ckpt =
      testing::TempDir() + "/paradet_orch_progress.json";
  const std::string journal = journal_path_for(ckpt);
  std::remove(ckpt.c_str());
  std::remove(journal.c_str());

  // Nothing on disk: no progress.
  EXPECT_FALSE(checkpoint_has_progress(ckpt));

  // A header-only journal is an empty checkpoint: still no progress.
  const JournalHeader header{1, 8, 0, ShardSpec{}};
  JournalWriter writer(journal, header);
  EXPECT_FALSE(checkpoint_has_progress(ckpt));

  // One journaled record is resumable progress.
  writer.append({0, sim::RunResult{}});
  EXPECT_TRUE(checkpoint_has_progress(ckpt));

  // A snapshot alone (legacy or compacted) is progress too.
  std::remove(journal.c_str());
  CampaignArtifact snapshot;
  snapshot.seed = 1;
  snapshot.tasks = 8;
  write_artifact_file(ckpt, snapshot);
  EXPECT_TRUE(checkpoint_has_progress(ckpt));
  std::remove(ckpt.c_str());
}

TEST(Orchestrator, SetupErrorsThrowBeforeAnythingSpawns) {
  OrchestratorOptions options = options_under(testing::TempDir() + "/orch");
  EXPECT_THROW(orchestrate({}, options), std::invalid_argument);

  options.shards = 0;
  EXPECT_THROW(orchestrate({"/bin/true"}, options), std::invalid_argument);

  options = options_under("");
  EXPECT_THROW(orchestrate({"/bin/true"}, options), std::invalid_argument);

  options = options_under(testing::TempDir() + "/orch");
  options.inject_kill = 3;  // shards are 0..2.
  EXPECT_THROW(orchestrate({"/bin/true"}, options), std::invalid_argument);

  options.inject_kill = -1;
  EXPECT_THROW(orchestrate({"/no/such/driver"}, options), std::runtime_error);
}

}  // namespace
}  // namespace paradet::runtime
