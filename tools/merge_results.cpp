// merge_results: folds campaign shard artifacts (written by a bench or
// example run with `--shard=K/N --out=shard_K.json`) back into the
// single-machine artifact.
//
//   merge_results --out=merged.json shard_0.json shard_1.json ...
//
// The merge validates that every input describes the same campaign, that
// the shards' runs are disjoint and cover every task index, then
// re-aggregates in task-index order — so `merged.json` is byte-identical
// to the file an unsharded `--out=merged.json` run would have written
// (scripts/shard_smoke_test.sh checks exactly that with cmp).
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <utility>
#include <vector>

#include "runtime/serialize.h"

namespace {

int usage(const char* argv0, int status) {
  std::fprintf(stderr,
               "usage: %s [--out=merged.json] shard_0.json shard_1.json ...\n"
               "Merges campaign shard artifacts into the single-machine "
               "artifact.\n",
               argv0);
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace paradet;

  std::string out_path;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strcmp(arg, "--help") == 0) {
      return usage(argv[0], 0);
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      return usage(argv[0], 2);
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) return usage(argv[0], 2);

  try {
    std::vector<runtime::CampaignArtifact> shards;
    shards.reserve(inputs.size());
    for (const std::string& path : inputs) {
      shards.push_back(runtime::read_artifact_file(path));
      const runtime::CampaignArtifact& shard = shards.back();
      std::printf("read %s: shard %llu/%llu, %zu of %llu runs\n",
                  path.c_str(),
                  static_cast<unsigned long long>(shard.shard.index),
                  static_cast<unsigned long long>(shard.shard.count),
                  shard.runs.size(),
                  static_cast<unsigned long long>(shard.tasks));
    }

    const runtime::CampaignArtifact merged =
        runtime::merge_artifacts(std::move(shards));
    const runtime::CampaignAggregate& aggregate = merged.aggregate;
    std::printf("merged campaign seed=%llu: %llu runs, %llu detections, "
                "mean main cycles %.1f, mean delay %.1f ns\n",
                static_cast<unsigned long long>(merged.seed),
                static_cast<unsigned long long>(aggregate.runs),
                static_cast<unsigned long long>(aggregate.errors_detected),
                aggregate.main_cycles.mean(),
                aggregate.delay_ns.summary().mean());

    if (!out_path.empty()) {
      runtime::write_artifact_file(out_path, merged);
      std::printf("wrote %s\n", out_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "merge_results: %s\n", e.what());
    return 1;
  }
  return 0;
}
