// Timing model for the in-order checker cores (§IV-B, fig. 4): a 4-stage
// scalar pipeline with full forwarding, a private L0 instruction cache, an
// L1 instruction cache shared by all checker cores, and no data cache (all
// data reads hit the segment's log SRAM). All cycles here are *checker*
// cycles; the CheckedSystem converts to the global domain via ClockDomain.
//
// Modelling notes (see DESIGN.md §6):
//  * The shared L1I is modelled as a shared tag array without port
//    contention; an L0 miss pays a fixed penalty to reach it and an L1
//    miss pays the main L2's latency (the instructions were fetched by the
//    main core recently, so L2 hits are the common case, as the paper
//    argues in §IV-B).
//  * Taken branches pay a fixed bubble (resolve in EX of a 4-stage
//    pipeline; the tiny cores have no branch predictor).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/config.h"
#include "common/types.h"
#include "core/checker_engine.h"
#include "sim/frontend.h"
#include "sim/uop_info.h"

namespace paradet::sim {

/// Instruction-cache tag state shared between all checker cores.
class SharedCheckerIcache {
 public:
  SharedCheckerIcache(std::uint64_t size_bytes, unsigned line_bytes = 64,
                      unsigned assoc = 4);

  /// Returns true on hit; on miss the line is filled (the caller charges
  /// the next-level latency).
  bool access(Addr line_addr);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    bool valid = false;
    std::uint64_t lru = 0;
  };
  std::size_t sets_;
  unsigned assoc_;
  unsigned line_shift_;
  std::vector<Line> lines_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// One checker core's timing state (the L0 cache persists across the
/// segments this core checks, capturing code reuse between checks).
class CheckerCoreTiming {
 public:
  CheckerCoreTiming(const CheckerConfig& config, SharedCheckerIcache& shared,
                    unsigned l2_latency_checker_cycles);

  /// Rewiring copy for warm-state capture: duplicates `other`'s L0 state
  /// and counters but shares the given L1I (a copy of `other`'s).
  CheckerCoreTiming(const CheckerCoreTiming& other,
                    SharedCheckerIcache& shared)
      : config_(other.config_),
        shared_(shared),
        l2_latency_(other.l2_latency_),
        l0_mask_(other.l0_mask_),
        l0_tags_(other.l0_tags_),
        l0_valid_(other.l0_valid_),
        frontend_(other.frontend_),
        l0_hits_(other.l0_hits_),
        l0_misses_(other.l0_misses_) {}

  struct WalkResult {
    /// Total checker cycles from wakeup to checkpoint validation done.
    Cycle local_cycles = 0;
    /// For each consumed log entry, the local cycle its check completed.
    std::vector<Cycle> entry_check_cycles;
  };

  /// Computes the pipeline timing of re-executing `trace` and checking
  /// `total_entries` log entries. `statics`, when given, supplies the
  /// per-static-instruction crack/classification metadata for traced PCs
  /// inside the predecoded image (out-of-image records recompute it).
  WalkResult walk(const std::vector<core::CheckerInstRecord>& trace,
                  std::size_t total_entries,
                  const ProgramStatics* statics = nullptr);

  std::uint64_t l0_hits() const { return l0_hits_; }
  std::uint64_t l0_misses() const { return l0_misses_; }

 private:
  bool l0_access(Addr line_addr);
  /// Front-end stall (checker cycles) charged after a control record when
  /// CheckerConfig::model_frontend is on; 0 for correctly predicted flow.
  unsigned frontend_stall(const InstStatic& inst_static, Addr pc,
                          bool taken, Addr next_pc);

  CheckerConfig config_;
  SharedCheckerIcache& shared_;
  unsigned l2_latency_;
  /// Direct-mapped L0 tags (power-of-two line count, mask-indexed).
  std::uint64_t l0_mask_ = 0;
  std::vector<std::uint64_t> l0_tags_;
  std::vector<bool> l0_valid_;
  /// Present only under CheckerConfig::model_frontend (fidelity ablation);
  /// the default checker pays the fixed taken-branch bubble instead.
  std::optional<FrontEnd> frontend_;
  std::uint64_t l0_hits_ = 0;
  std::uint64_t l0_misses_ = 0;
};

}  // namespace paradet::sim
