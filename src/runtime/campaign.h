// Campaign: a batch of independent CheckedSystem runs executed on a
// ParallelRunner with deterministic per-task RNG seeding and merged
// statistics.
//
// Fault-injection campaigns, design-space sweeps and figure reproductions
// all share one shape: N independent simulations, each needing its own
// random stream, whose results are folded into campaign-level statistics.
// Campaign fixes the two places where naive parallelisation loses
// reproducibility:
//
//   * Seeding. Each task's seed is a pure function of (campaign seed,
//     task index) — never of a shared RNG advanced in scheduling order —
//     so task 17 sees the same random stream whether it runs first, last,
//     on one worker or on sixteen.
//   * Aggregation. Results are collected by task index and merged front
//     to back after the pool joins, so the merged Histogram / Counters /
//     Summary values are bit-identical across worker counts.
//
// Campaigns also scale past one process: a ShardSpec restricts execution
// to task indices `i % count == index` while keeping per-task seeds (and
// therefore per-task results) identical to the unsharded campaign's, and
// run_sharded() can persist its runs as a versioned JSON artifact
// (runtime/serialize.h) that tools/merge_results folds back — in task
// order — into the bit-identical single-machine aggregate. The same
// artifact format doubles as a checkpoint snapshot: an interrupted
// campaign restarted with the same --checkpoint path resumes without
// re-running finished tasks and still produces byte-identical final
// output. Between snapshots, completions persist as O(1) appends to a
// checksummed journal beside the snapshot (serialize.h), so total
// checkpoint cost is O(n) over the campaign.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "runtime/parallel_runner.h"
#include "sim/checked_system.h"

namespace paradet::runtime {

/// Deterministic, order-independent per-task seed: a SplitMix64 hash of
/// the campaign seed and the task index. Distinct indices yield
/// statistically independent streams (SplitMix64 is a full-period mixer).
std::uint64_t derive_task_seed(std::uint64_t campaign_seed,
                               std::uint64_t task_index);

/// Merged statistics over a set of RunResults. Absorb order matters for
/// bit-identical floating-point sums; Campaign always absorbs in task
/// order.
struct CampaignAggregate {
  std::uint64_t runs = 0;
  std::uint64_t errors_detected = 0;
  std::uint64_t instructions = 0;
  std::uint64_t segments = 0;
  Summary main_cycles;
  Histogram delay_ns;
  Counters counters;

  void absorb(const sim::RunResult& result);
  void merge(const CampaignAggregate& other);
};

/// Result of a campaign: every per-task RunResult (task order) plus the
/// merged statistics.
struct CampaignResult {
  std::vector<sim::RunResult> runs;
  CampaignAggregate aggregate;
};

/// A 1-of-N partition of a campaign's task space: shard K of N owns the
/// task indices with `task % count == index`. The default 0/1 spec owns
/// the whole campaign.
struct ShardSpec {
  std::uint64_t index = 0;
  std::uint64_t count = 1;

  bool owns(std::uint64_t task) const { return task % count == index; }
  bool whole() const { return count == 1; }
  bool operator==(const ShardSpec&) const = default;
};

/// One completed task: its global index plus the run's full result.
struct TaskRecord {
  std::uint64_t index = 0;
  sim::RunResult result;
};

/// The persistent/mergeable form of a campaign execution: which slice of
/// which campaign ran, every completed run (ascending task index), and the
/// aggregate absorbed over those runs in task index order. Serialized by
/// runtime/serialize.h; shard outputs, checkpoints and merge_results
/// outputs are all this one shape.
struct CampaignArtifact {
  std::uint64_t seed = 0;
  std::uint64_t tasks = 0;  ///< whole-campaign task count, not this slice's.
  /// Caller-supplied hash of the driver configuration that gives task
  /// indices their meaning (workload scale, suite filter, budget, ...).
  /// (seed, tasks) alone cannot tell two differently-configured runs of
  /// the same driver apart; resuming or merging across configurations
  /// would silently mix incompatible results.
  std::uint64_t fingerprint = 0;
  ShardSpec shard;
  std::vector<TaskRecord> runs;
  CampaignAggregate aggregate;
};

/// Execution options for Campaign::run_sharded.
struct CampaignRunOptions {
  ShardSpec shard;

  /// Configuration fingerprint stored in artifacts and validated against
  /// checkpoints (see CampaignArtifact::fingerprint). Leave 0 only when
  /// the driver's configuration is fully determined by (seed, tasks).
  std::uint64_t fingerprint = 0;

  /// Retain per-task RunResults in the returned artifact. Off by default:
  /// a large campaign's RunResults (each with an ArchState, a histogram
  /// and a counter bag) dwarf the aggregate, and most callers only need
  /// the aggregate. File outputs below always contain the full runs
  /// regardless — merging and resuming need them.
  bool keep_runs = false;

  /// Write the completed artifact here (for tools/merge_results).
  std::string out_path;

  /// Checkpoint path: loaded (if present) before running to skip finished
  /// tasks. Persistence is an append-only journal of completed runs at
  /// `<path>.journal` (one checksummed record per completion, O(record)
  /// each) folded periodically — and once more when the shard finishes —
  /// into a whole-artifact snapshot at `<path>`, so total checkpoint cost
  /// over the campaign is O(n). A pre-journal checkpoint file is exactly
  /// a snapshot with no journal; it resumes unchanged.
  std::string checkpoint_path;

  /// Compaction floor: the journal is folded into the snapshot once it
  /// holds at least max(checkpoint_every, current snapshot records)
  /// completed runs (the second term keeps total compaction cost linear).
  /// Completions are journaled immediately regardless.
  std::uint64_t checkpoint_every = 16;

  /// Lifts the host-side CLI flags (--shard/--out/--checkpoint/...) into
  /// execution options.
  static CampaignRunOptions from_runtime(const RuntimeOptions& runtime);
};

/// A batch of `tasks` independent runs, seeded from `seed`.
class Campaign {
 public:
  using Task = std::function<sim::RunResult(std::size_t index,
                                            std::uint64_t task_seed)>;

  Campaign(std::size_t tasks, std::uint64_t seed)
      : tasks_(tasks), seed_(seed) {}

  std::size_t tasks() const { return tasks_; }
  std::uint64_t seed() const { return seed_; }
  std::uint64_t task_seed(std::size_t index) const {
    return derive_task_seed(seed_, index);
  }

  /// Executes task(index, task_seed(index)) for every index this shard
  /// owns, resuming from / writing the checkpoint and artifact files named
  /// in `options`. `task` must be safe to invoke concurrently from
  /// multiple threads (each call owns its simulator). The artifact's
  /// aggregate is absorbed in task-index order after the pool joins, so it
  /// is bit-identical at every jobs level — and merging all N shards'
  /// artifacts reproduces the unsharded artifact byte for byte.
  CampaignArtifact run_sharded(const ParallelRunner& runner,
                               const CampaignRunOptions& options,
                               const Task& task) const;

  /// Executes the whole campaign and keeps every per-task RunResult:
  /// task(index, task_seed(index)) for every index on `runner`, merged in
  /// task order. Prefer run_sharded with keep_runs=false when only the
  /// aggregate is needed.
  template <typename TaskFn>
  CampaignResult run(const ParallelRunner& runner, TaskFn&& task) const {
    CampaignRunOptions options;
    options.keep_runs = true;
    CampaignArtifact artifact =
        run_sharded(runner, options, std::forward<TaskFn>(task));
    CampaignResult result;
    result.runs.reserve(artifact.runs.size());
    for (auto& record : artifact.runs) {
      result.runs.push_back(std::move(record.result));
    }
    result.aggregate = std::move(artifact.aggregate);
    return result;
  }

 private:
  std::size_t tasks_;
  std::uint64_t seed_;
};

}  // namespace paradet::runtime
