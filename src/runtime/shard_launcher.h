// ShardLauncher: where a shard subprocess actually runs.
//
// The orchestrator (runtime/orchestrator.h) and the campaign server
// (runtime/campaign_server.h) own the *policy* of a sharded campaign —
// argv construction, run-directory layout, retry budgets, straggler
// kills, merging. This interface owns the *mechanism*: start this argv
// with its output appended to that log file, tell me when it exits, kill
// it, and make its artifacts appear at their local run-dir paths.
// Everything above the interface is implementation-agnostic, which is
// what lets one orchestration loop drive:
//
//   * LocalShardLauncher — fork/exec/waitpid on this host (the PR 4
//     behaviour, now one implementation among several).
//   * SshShardLauncher — the identical shard command on a remote host
//     via ssh, with artifacts rsync'd back after a clean exit. The
//     checkpoint/restart contract is unchanged: a relaunch lands on the
//     same host and resumes from the shard's remote checkpoint journal.
//   * MockShardLauncher — no processes at all: scripted exits, failures
//     and hangs, so the whole spawn/retry/straggler/inject-kill loop is
//     unit-testable in milliseconds (tests/test_orchestrator.cc,
//     tests/test_campaign_server.cc).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace paradet::runtime {

/// Exit state of one launched shard attempt.
struct ShardExit {
  bool exited = false;  ///< false = still running.
  int exit_code = -1;   ///< valid when exited and signal == 0.
  int signal = 0;       ///< nonzero when the run was killed by a signal.

  bool clean() const { return exited && signal == 0 && exit_code == 0; }
};

class ShardLauncher {
 public:
  virtual ~ShardLauncher() = default;

  /// Starts `argv` with stdout+stderr appended to `log_path` (one log per
  /// shard, appended across relaunches). Returns an opaque handle for
  /// poll/kill/reap. Throws on launcher-level failure (fork/resource
  /// exhaustion); an unrunnable command is not a throw — it surfaces
  /// through poll() as exit 127, exactly like a driver that crashes.
  virtual std::uint64_t launch(const std::vector<std::string>& argv,
                               const std::string& log_path) = 0;

  /// Non-blocking liveness check. Safe to call after the exit was
  /// reported (returns the same ShardExit again).
  virtual ShardExit poll(std::uint64_t handle) = 0;

  /// Hard-kill (SIGKILL or equivalent); poll() still reports the exit.
  /// A no-op once the run has already exited.
  virtual void kill(std::uint64_t handle) = 0;

  /// Blocks until the handle's run has exited. Used on unwind: whoever
  /// launched shards must never leave them running behind an exception.
  virtual void reap(std::uint64_t handle) = 0;

  /// Pre-launch sanity check on the driver command: false when the
  /// command can be proven unrunnable before spawning anything. The
  /// default checks X_OK for path-shaped commands on the local
  /// filesystem (bare names are left to the child's PATH lookup); remote
  /// and mock launchers accept everything — an unrunnable command still
  /// surfaces as exit 127 through poll().
  virtual bool command_is_runnable(const std::string& command);

  /// True once the checkpoint at `path` shows resumable progress, as seen
  /// from where the shard runs. The default is the local-filesystem probe
  /// (orchestrator.h checkpoint_has_progress); SshShardLauncher inherits
  /// it, which is correct only when the run dir is on a shared
  /// filesystem — the inject-kill drill documents that caveat.
  virtual bool checkpoint_progress(const std::string& path);

  /// After a shard's clean exit: make its artifact files present at their
  /// local run-dir paths (no-op locally; rsync-back for ssh). Throws on
  /// transfer failure.
  virtual void collect(const std::vector<std::string>& paths);

  virtual const char* name() const = 0;
};

// --- Local fork/exec ---------------------------------------------------------

/// The PR 4 spawn machinery behind the interface: fork, redirect
/// stdout+stderr to the log, execvp; poll is waitpid(WNOHANG). An ECHILD
/// (the child vanished with unknowable status) reports as a non-clean
/// exit, so the caller's retry path re-covers it from the checkpoint.
class LocalShardLauncher : public ShardLauncher {
 public:
  std::uint64_t launch(const std::vector<std::string>& argv,
                       const std::string& log_path) override;
  ShardExit poll(std::uint64_t handle) override;
  void kill(std::uint64_t handle) override;
  void reap(std::uint64_t handle) override;
  const char* name() const override { return "local"; }

 private:
  struct Proc {
    int pid = -1;
    ShardExit exit;
  };
  std::uint64_t next_handle_ = 1;
  std::map<std::uint64_t, Proc> procs_;
};

// --- Remote via ssh ----------------------------------------------------------

struct SshLauncherOptions {
  /// ssh destination (`host`, `user@host`, or an ssh_config alias).
  std::string host;
  /// Local ssh/rsync client binaries (overridable for tests/wrappers).
  std::string ssh_command = "ssh";
  std::string rsync_command = "rsync";
  /// Extra ssh client flags, e.g. {"-p", "2222", "-o", "BatchMode=yes"}.
  std::vector<std::string> ssh_flags;
};

/// Runs the identical shard command on `host` under the same absolute
/// run-dir paths (the remote run dir is created first), and rsyncs the
/// artifacts back after a clean exit — so above the interface, a remote
/// campaign is indistinguishable from a local one. kill() SIGKILLs the
/// local ssh client and best-effort pkills the remote command (matched by
/// its unique --out path). Relaunches land on the same host, resuming
/// from the shard's remote checkpoint journal.
class SshShardLauncher : public ShardLauncher {
 public:
  explicit SshShardLauncher(SshLauncherOptions options);

  std::uint64_t launch(const std::vector<std::string>& argv,
                       const std::string& log_path) override;
  ShardExit poll(std::uint64_t handle) override;
  void kill(std::uint64_t handle) override;
  void reap(std::uint64_t handle) override;
  void collect(const std::vector<std::string>& paths) override;
  const char* name() const override { return "ssh"; }

 private:
  SshLauncherOptions options_;
  LocalShardLauncher local_;  ///< runs the ssh/rsync client processes.
  std::map<std::uint64_t, std::string> kill_markers_;  ///< handle → --out path.
};

/// One string safe to paste into a remote POSIX shell: each arg
/// single-quoted (embedded quotes escaped), joined by spaces. Pure;
/// exposed for tests.
std::string shell_quote_command(const std::vector<std::string>& argv);

/// The full local argv that runs `argv` on the remote host: the ssh
/// client + flags + host + a remote command that creates the shard's run
/// directory and execs the quoted driver command. Pure; exposed for
/// tests.
std::vector<std::string> ssh_wrap_argv(const SshLauncherOptions& options,
                                       const std::vector<std::string>& argv);

/// The local argv that copies remote `path` back to local `path`. Pure;
/// exposed for tests.
std::vector<std::string> rsync_back_argv(const SshLauncherOptions& options,
                                         const std::string& path);

// --- Scripted mock -----------------------------------------------------------

/// One scripted run attempt for a mocked shard.
struct MockOutcome {
  enum class Kind {
    kSucceed,  ///< exits 0 after `polls` polls; fires the success hook.
    kFail,     ///< exits with `exit_code`/`signal` after `polls` polls.
    kHang,     ///< never exits on its own; kill() turns it into SIGKILL.
  };
  Kind kind = Kind::kSucceed;
  int exit_code = 1;   ///< for kFail with signal == 0.
  int signal = 0;      ///< for kFail: report death by this signal.
  unsigned polls = 0;  ///< poll() calls before the outcome resolves.
};

/// No subprocesses: launches consume scripted outcomes per shard index
/// (parsed from the argv's --shard=K/N; the last outcome repeats when a
/// shard is relaunched past its script). Every transition is appended to
/// an event log ("launch 0", "exit 0 clean", "kill 2", ...) so tests can
/// assert ordering, and a success hook lets tests materialize real shard
/// artifacts so the merge path runs for real.
class MockShardLauncher : public ShardLauncher {
 public:
  /// Successive launches of shard `index` consume successive outcomes.
  void script(std::uint64_t index, std::vector<MockOutcome> outcomes);

  /// Invoked (with the shard index and the run's full argv) when a
  /// scripted run succeeds, before poll() reports the clean exit — the
  /// place to write the shard's artifact file at its --out path.
  void on_success(
      std::function<void(std::uint64_t, const std::vector<std::string>&)>
          hook);

  /// Scripted result of checkpoint_progress() (default true, so
  /// inject-kill drills fire on the first poll).
  void set_checkpoint_progress(bool value) { checkpoint_progress_ = value; }

  const std::vector<std::string>& events() const { return events_; }
  unsigned launches(std::uint64_t index) const;

  std::uint64_t launch(const std::vector<std::string>& argv,
                       const std::string& log_path) override;
  ShardExit poll(std::uint64_t handle) override;
  void kill(std::uint64_t handle) override;
  void reap(std::uint64_t handle) override;
  bool checkpoint_progress(const std::string& path) override;
  void collect(const std::vector<std::string>& paths) override;
  const char* name() const override { return "mock"; }

 private:
  struct Run {
    std::uint64_t shard = 0;
    std::vector<std::string> argv;
    MockOutcome outcome;
    unsigned polls_left = 0;
    bool killed = false;
    bool reported = false;  ///< exit already surfaced through poll().
    ShardExit exit;
  };

  std::uint64_t next_handle_ = 1;
  std::map<std::uint64_t, Run> runs_;
  std::map<std::uint64_t, std::vector<MockOutcome>> scripts_;
  std::map<std::uint64_t, unsigned> launch_counts_;
  std::vector<std::string> events_;
  std::function<void(std::uint64_t, const std::vector<std::string>&)>
      on_success_;
  bool checkpoint_progress_ = true;
};

}  // namespace paradet::runtime
