#include "isa/crack.h"

namespace paradet::isa {

CrackedInst crack(const Inst& inst) {
  CrackedInst out;
  if (inst.op == Opcode::kLdp) {
    Inst lo = inst;
    lo.op = Opcode::kLd;
    Inst hi = inst;
    hi.op = Opcode::kLd;
    hi.rd = static_cast<RegIndex>(inst.rd + 1);
    hi.imm = inst.imm + 8;
    out.uops[0] = Uop{lo, 0, 2};
    out.uops[1] = Uop{hi, 1, 2};
    out.count = 2;
    return out;
  }
  if (inst.op == Opcode::kStp) {
    Inst lo = inst;
    lo.op = Opcode::kSd;
    Inst hi = inst;
    hi.op = Opcode::kSd;
    hi.rd = static_cast<RegIndex>(inst.rd + 1);
    hi.imm = inst.imm + 8;
    out.uops[0] = Uop{lo, 0, 2};
    out.uops[1] = Uop{hi, 1, 2};
    out.count = 2;
    return out;
  }
  out.uops[0] = Uop{inst, 0, 1};
  out.count = 1;
  return out;
}

}  // namespace paradet::isa
