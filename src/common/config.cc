#include "common/config.h"

namespace paradet {

SystemConfig SystemConfig::standard() {
  SystemConfig cfg;
  cfg.l1i = CacheConfig{.name = "L1I",
                        .size_bytes = 32 * 1024,
                        .assoc = 2,
                        .line_bytes = 64,
                        .hit_latency = 2,
                        .mshrs = 6};
  cfg.l1d = CacheConfig{.name = "L1D",
                        .size_bytes = 32 * 1024,
                        .assoc = 2,
                        .line_bytes = 64,
                        .hit_latency = 2,
                        .mshrs = 6};
  cfg.l2 = CacheConfig{.name = "L2",
                       .size_bytes = 1024 * 1024,
                       .assoc = 16,
                       .line_bytes = 64,
                       .hit_latency = 12,
                       .mshrs = 16};
  return cfg;
}

SystemConfig SystemConfig::baseline_unchecked() {
  SystemConfig cfg = standard();
  cfg.detection.enabled = false;
  cfg.detection.simulate_checkers = false;
  cfg.detection.load_forwarding_unit = false;
  return cfg;
}

}  // namespace paradet
